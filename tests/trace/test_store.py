"""Content-addressed trace artifacts: keys, round trips, miss semantics."""

from __future__ import annotations

import gzip
import os
import pickle

from repro.analysis.resultstore import result_to_dict
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.trace import TraceStore, capture_experiment, replay_experiment, trace_key
import repro.trace.store as store_module


def make_trace(config):
    _, trace = capture_experiment(config)
    assert trace is not None
    return trace


# ------------------------------------------------------------------- keying

def test_key_is_tier_insensitive_and_behaviour_sensitive():
    base = ExperimentConfig(workload="sort", size="tiny", tier=0)
    assert trace_key(base) == trace_key(
        base.with_options(tier=3, mba_percent=40, cpu_socket=0, label="probe")
    )
    assert trace_key(base) != trace_key(base.with_options(workload="repartition"))
    assert trace_key(base) != trace_key(base.with_options(num_executors=2))
    assert len(trace_key(base)) == 64  # sha256 hex


def test_key_folds_engine_version(monkeypatch):
    base = ExperimentConfig(workload="sort", size="tiny", tier=0)
    before = trace_key(base)
    monkeypatch.setattr(store_module, "ENGINE_VERSION", "999-future")
    assert trace_key(base) != before


# --------------------------------------------------------------- round trip

def test_save_load_round_trip_supports_replay(tmp_path):
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    trace = make_trace(config)
    store = TraceStore(tmp_path)
    path = store.save(config, trace)
    assert path.exists()
    assert store.exists(config)
    assert store.keys() == [trace_key(config)]

    loaded = store.load(config.with_options(tier=3))  # timing twin hits
    assert loaded is not None
    assert loaded.checksum == trace.checksum and loaded.intact
    target = config.with_options(tier=3)
    assert result_to_dict(replay_experiment(target, loaded)) == result_to_dict(
        run_experiment(target)
    )


def test_save_leaves_no_temp_files(tmp_path):
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    store = TraceStore(tmp_path)
    store.save(config, make_trace(config))
    leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
    assert leftovers == []


# ------------------------------------------------------------ miss semantics

def test_missing_and_corrupt_artifacts_miss(tmp_path):
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    store = TraceStore(tmp_path)
    assert store.load(config) is None  # missing

    store.save(config, make_trace(config))
    path = store.path_for(config)
    path.write_bytes(b"not a gzip stream")
    assert store.load(config) is None  # unreadable

    path.write_bytes(gzip.compress(pickle.dumps({"not": "a trace"})))
    assert store.load(config) is None  # wrong payload type


def test_tampered_residues_fail_the_checksum_on_load(tmp_path):
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    store = TraceStore(tmp_path)
    trace = make_trace(config)
    trace.jobs[-1].task_sets[0].floats["compute_ops"][0] += 1.0  # post-seal
    store.save(config, trace)
    assert store.load(config) is None


def test_version_skewed_artifact_misses_via_its_key(tmp_path, monkeypatch):
    """A new engine version changes every key, so old artifacts simply
    stop resolving — no artifact parsing or deletion involved."""
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    store = TraceStore(tmp_path)
    store.save(config, make_trace(config))
    assert store.load(config) is not None
    monkeypatch.setattr(store_module, "ENGINE_VERSION", "999-future")
    assert store.load(config) is None


# ---------------------------------------------------------------- load cache

def test_load_cache_returns_same_object_until_rewrite(tmp_path):
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    store = TraceStore(tmp_path)
    store.save(config, make_trace(config))
    first = store.load(config)
    assert store.load(config) is first  # served from the LRU

    # Rewriting the artifact changes its stat signature -> fresh load.
    replacement = make_trace(config)
    store.save(config, replacement)
    path = store.path_for(config)
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
    fresh = store.load(config)
    assert fresh is not None and fresh is not first


def test_same_mtime_overwrite_is_not_served_stale(tmp_path):
    """The PR-8 satellite: the load cache folds a content digest into
    its key, so an artifact overwritten in-place with the *same* size
    and mtime_ns (rsync-style restores, coarse filesystem timestamps)
    must serve the new bytes instead of the cached trace."""
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    store = TraceStore(tmp_path)
    original = make_trace(config)
    replacement = make_trace(config)
    replacement.jobs[-1].task_sets[0].floats["compute_ops"][0] += 1.0
    replacement.seal()  # recompute the checksum over the mutated residue

    # compresslevel=0 stores the pickles verbatim, so equal-length
    # pickles give equal-length artifacts — size cannot tell them apart.
    payload_a = gzip.compress(pickle.dumps(original), compresslevel=0)
    payload_b = gzip.compress(pickle.dumps(replacement), compresslevel=0)
    assert len(payload_a) == len(payload_b)

    path = store.path_for(config)
    path.write_bytes(payload_a)
    stat = path.stat()
    first = store.load(config)
    assert first is not None
    assert store.load(config) is first  # cached under the digest key

    path.write_bytes(payload_b)
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
    after = path.stat()
    assert (after.st_size, after.st_mtime_ns) == (stat.st_size, stat.st_mtime_ns)

    fresh = store.load(config)
    assert fresh is not None and fresh is not first
    assert fresh.checksum == replacement.checksum != original.checksum
