"""Shared-memory trace transport: zero-copy round trips, creator-owned
lifecycle, zero leaked segments on crash, cancellation and drain."""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.resultstore import result_to_dict
from repro.core.experiment import ExperimentConfig
from repro.runner import run_campaign
from repro.trace import (
    SharedTraceCache,
    TraceStore,
    capture_experiment,
    clear_shared_view,
    fast_replay_experiment,
    install_shared_view,
    replay_experiment,
    trace_key,
)
from repro.trace.shm import _SEGMENT_PREFIX, attach

DEV_SHM = Path("/dev/shm")


def our_segments() -> set[str]:
    if not DEV_SHM.exists():  # pragma: no cover - non-tmpfs platforms
        return set()
    return {p.name for p in DEV_SHM.iterdir() if _SEGMENT_PREFIX in p.name}


@pytest.fixture
def captured():
    config = ExperimentConfig(workload="sort", size="tiny")
    _, trace = capture_experiment(config)
    assert trace is not None
    return config, trace


@pytest.fixture(autouse=True)
def _isolated_shared_view():
    clear_shared_view()
    yield
    clear_shared_view()


# ------------------------------------------------------------- round trip

def test_publish_attach_roundtrip_is_bit_identical(captured):
    config, trace = captured
    cache = SharedTraceCache()
    try:
        descriptor = cache.publish(trace_key(config), trace)
        rebuilt = attach(descriptor)
        assert rebuilt is not None
        assert rebuilt.checksum == trace.checksum
        assert rebuilt.intact  # recomputed over the shared-memory views
        for job, shared_job in zip(trace.jobs, rebuilt.jobs):
            for ts, shared_ts in zip(job.task_sets, shared_job.task_sets):
                for name, arr in ts.floats.items():
                    np.testing.assert_array_equal(arr, shared_ts.floats[name])
                    assert not shared_ts.floats[name].flags.writeable
                for name, arr in ts.ints.items():
                    np.testing.assert_array_equal(arr, shared_ts.ints[name])
        for tier in (0, 3):
            target = config.with_options(tier=tier)
            assert result_to_dict(
                fast_replay_experiment(target, rebuilt)
            ) == result_to_dict(replay_experiment(target, trace))
    finally:
        cache.close()


def test_attach_is_cached_per_process(captured):
    config, trace = captured
    cache = SharedTraceCache()
    try:
        descriptor = cache.publish(trace_key(config), trace)
        assert attach(descriptor) is attach(descriptor)
    finally:
        cache.close()


def test_publish_is_idempotent_per_key(captured):
    config, trace = captured
    cache = SharedTraceCache()
    try:
        first = cache.publish("k", trace)
        assert cache.publish("k", trace) is first
        assert len(cache) == 1
    finally:
        cache.close()


def test_store_load_resolves_from_shared_view(tmp_path, captured):
    """An installed manifest serves loads with no artifact on disk."""
    config, trace = captured
    cache = SharedTraceCache()
    try:
        key = trace_key(config)
        install_shared_view({key: cache.publish(key, trace)})
        store = TraceStore(tmp_path)  # empty directory — no artifact
        loaded = store.load(config)
        assert loaded is not None and loaded.checksum == trace.checksum
    finally:
        cache.close()


def test_stale_manifest_falls_back_to_disk(tmp_path, captured):
    config, trace = captured
    cache = SharedTraceCache()
    key = trace_key(config)
    descriptor = cache.publish(key, trace)
    cache.close()  # publisher gone: the segment no longer exists
    install_shared_view({key: descriptor})
    store = TraceStore(tmp_path)
    assert store.load(config) is None  # no artifact either
    store.save(config, trace)
    loaded = store.load(config)
    assert loaded is not None and loaded.checksum == trace.checksum


# ------------------------------------------------------------ LRU bound

def test_lru_eviction_bounds_dev_shm(captured):
    """Publishing past ``max_bytes`` unlinks the least-recently-used
    segment; ``touch`` refreshes recency so hot classes survive."""
    _, trace = captured
    probe = SharedTraceCache()
    size = probe.publish("probe", trace).size
    probe.close()
    cache = SharedTraceCache(max_bytes=2 * size)
    try:
        first = cache.publish("a", trace)
        second = cache.publish("b", trace)
        assert cache.nbytes <= 2 * size and cache.evictions == 0
        cache.touch("a")  # "b" becomes the LRU entry
        cache.publish("c", trace)  # over bound — evicts "b" only
        assert sorted(cache.manifest()) == ["a", "c"]
        assert cache.evictions == 1
        assert cache.nbytes <= 2 * size
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=second.segment)
        assert attach(first) is not None  # survivor still attaches
    finally:
        cache.close()


def test_most_recent_segment_survives_any_bound(captured):
    """The entry just published is never evicted, even when it alone
    exceeds the bound — the caller is about to hand it to a worker."""
    _, trace = captured
    cache = SharedTraceCache(max_bytes=1)
    try:
        only = cache.publish("only", trace)
        assert len(cache) == 1
        assert attach(only) is not None
        cache.publish("next", trace)
        assert list(cache.manifest()) == ["next"]
    finally:
        cache.close()


def test_evicted_key_falls_back_to_disk(tmp_path, captured):
    """A worker holding a manifest for an evicted class must resolve
    the artifact from disk, not fail."""
    config, trace = captured
    key = trace_key(config)
    store = TraceStore(tmp_path)
    store.save(config, trace)
    cache = SharedTraceCache(max_bytes=1)
    try:
        descriptor = cache.publish(key, trace)
        cache.publish("displacer", trace)  # evicts ``key``
        install_shared_view({key: descriptor})
        loaded = store.load(config)
        assert loaded is not None and loaded.checksum == trace.checksum
    finally:
        cache.close()


# -------------------------------------------------------------- lifecycle

def test_close_unlinks_exactly_once(captured):
    config, trace = captured
    cache = SharedTraceCache()
    descriptor = cache.publish(trace_key(config), trace)
    before = our_segments()
    assert any(descriptor.segment in name for name in before)
    cache.close()
    cache.close()  # idempotent
    assert not any(descriptor.segment in name for name in our_segments())
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=descriptor.segment)


def test_dropping_the_cache_unlinks_via_finalizer(captured):
    config, trace = captured
    cache = SharedTraceCache()
    descriptor = cache.publish(trace_key(config), trace)
    del cache  # no close() — the weakref finalizer must clean up
    import gc

    gc.collect()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=descriptor.segment)


def _attach_and_crash(descriptor) -> None:  # pragma: no cover - subprocess
    attach(descriptor)
    os._exit(3)  # simulate a hard worker crash: no cleanup of any kind


def test_worker_crash_leaks_nothing(captured):
    """A worker dying mid-attachment must not leak or unlink anything:
    its mapping dies with it, the parent still owns the segment."""
    config, trace = captured
    cache = SharedTraceCache()
    descriptor = cache.publish(trace_key(config), trace)
    proc = multiprocessing.Process(
        target=_attach_and_crash, args=(descriptor,)
    )
    proc.start()
    proc.join(30)
    assert proc.exitcode == 3
    # The crash must not have torn the segment out from under siblings…
    assert attach(descriptor) is not None
    # …and the creator's close still unlinks it.
    cache.close()
    assert not any(descriptor.segment in name for name in our_segments())


def test_cancelled_campaign_leaks_nothing(tmp_path):
    """Failing points (the cancellation shape campaigns see) leave no
    segments behind once the runner is closed."""
    grid = [
        ExperimentConfig(workload="sort", size="tiny", tier=tier)
        for tier in range(4)
    ]
    bad = [ExperimentConfig(workload="sort", size="nope")]
    before = our_segments()
    report = run_campaign(grid + bad, workers=2, trace_dir=tmp_path)
    assert len(report.failures) == 1  # the bad point failed, isolated
    assert report.replayed == 3
    assert our_segments() == before


def test_campaign_over_shm_is_value_identical(tmp_path):
    grid = [
        ExperimentConfig(workload="repartition", size="tiny", tier=tier)
        for tier in range(4)
    ]
    serial = run_campaign(grid, reuse_traces=False)
    before = our_segments()
    cold = run_campaign(grid, workers=2, trace_dir=tmp_path)
    warm = run_campaign(grid, workers=2, trace_dir=tmp_path)
    reference = [result_to_dict(r) for r in serial.results]
    assert [result_to_dict(r) for r in cold.results] == reference
    assert [result_to_dict(r) for r in warm.results] == reference
    assert warm.replayed == len(grid)
    assert our_segments() == before
