"""CLI entry point (``python -m repro``)."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sort" in out and "pagerank" in out
    assert "websearch" in out


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "77.8" in out
    assert "0.47" in out


def test_run_command(capsys):
    assert main(["run", "repartition", "--size", "tiny", "--tier", "2"]) == 0
    out = capsys.readouterr().out
    assert "verified      : True" in out
    assert "NVM reads" in out


def test_tiers_command(capsys):
    assert main(["tiers", "repartition", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Tier 3" in out and "vs T0" in out


def test_mba_command(capsys):
    assert main(["mba", "repartition", "--size", "tiny", "--tier", "2"]) == 0
    out = capsys.readouterr().out
    assert "MBA level" in out
    assert "latency-bound" in out


def test_invalid_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "terasort"])


def test_campaign_command_with_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = [
        "campaign", "repartition", "--sizes", "tiny", "--tiers", "0", "2",
        "--workers", "2", "--cache-dir", cache_dir, "--quiet",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "campaign over 2 points" in out
    assert "executed     : 2" in out
    assert "cache_hits   : 0" in out

    # Immediate resumed re-run: all points replay from the cache.
    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "executed     : 0" in out
    assert "cache_hits   : 2" in out


def test_campaign_command_without_cache(capsys):
    assert main(["campaign", "repartition", "--sizes", "tiny",
                 "--tiers", "0", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "failures     : 0" in out
    assert "verified" in out


def test_tiers_command_accepts_workers(capsys):
    assert main(["tiers", "repartition", "--size", "tiny",
                 "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Tier 3" in out and "vs T0" in out


def test_run_command_writes_trace_and_metrics(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert main([
        "run", "sort", "--size", "tiny", "--tier", "2",
        "--trace-out", str(trace), "--metrics-json", str(metrics),
        "--timeline",
    ]) == 0
    out = capsys.readouterr().out
    assert f"trace written to {trace}" in out
    assert f"metrics written to {metrics}" in out
    assert "stage timeline" in out

    payload = json.loads(trace.read_text())
    assert payload["otherData"]["schema"] == "repro.obs.trace"
    cats = {e.get("cat") for e in payload["traceEvents"]}
    assert {"experiment", "job", "stage", "task"} <= cats

    from repro.obs import load_metrics_json

    registry = load_metrics_json(metrics)
    assert registry.counter("scheduler.attempts_launched") > 0
    assert registry.gauge("experiment.execution_time") > 0


def test_run_command_observability_does_not_change_results(capsys):
    argv = ["run", "sort", "--size", "tiny", "--tier", "2"]
    assert main(argv) == 0
    plain = capsys.readouterr().out
    assert main(argv + ["--timeline"]) == 0
    observed = capsys.readouterr().out
    # Every result line (time, NVM counters, ...) is unchanged.
    assert plain.strip() in observed


def test_campaign_command_merges_observability(tmp_path, capsys):
    import json

    cache_dir = tmp_path / "cache"
    trace = tmp_path / "campaign.trace.json"
    metrics = tmp_path / "campaign.metrics.json"
    assert main([
        "campaign", "repartition", "--sizes", "tiny", "--tiers", "0", "2",
        "--cache-dir", str(cache_dir), "--quiet",
        "--trace-out", str(trace), "--metrics-json", str(metrics),
    ]) == 0
    out = capsys.readouterr().out
    assert f"merged trace written to {trace}" in out
    assert f"merged metrics written to {metrics}" in out

    payload = json.loads(trace.read_text())
    assert payload["otherData"]["points"] == 2
    merged = json.loads(metrics.read_text())
    assert merged["counters"]["campaign.points_merged"] == 2.0


def test_serve_and_submit_round_trip(tmp_path, capsys):
    """`repro serve` in a subprocess, `repro submit` in-process: the
    full TCP path, including a cache hit on resubmission."""
    import asyncio
    import os
    import re
    import subprocess
    import sys
    from pathlib import Path

    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(tmp_path / "cache"),
         "--service-metrics", str(tmp_path / "service-metrics.json")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline()
        match = re.match(r"serving on (\S+):(\d+)", banner)
        assert match, banner
        host, port = match.group(1), int(match.group(2))

        submit = ["submit", "sort", "--size", "tiny", "--tier", "1",
                  "--connect", f"{host}:{port}", "--quiet"]
        assert main(submit) == 0
        first = capsys.readouterr().out
        assert "verified      : True" in first
        assert main(submit) == 0  # identical point: served from cache
        assert "verified      : True" in capsys.readouterr().out

        async def stop():
            from repro.service import ServiceClient

            async with ServiceClient(host, port) as client:
                status = await client.status()
                await client.shutdown_server()
            return status

        status = asyncio.run(stop())
        assert status["summary"]["completed"] == 2
        assert status["summary"]["cache_hits"] == 1
        tail = proc.communicate(timeout=30)[0]
        assert "completed    : 2" in tail
        assert (tmp_path / "service-metrics.json").exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


def test_submit_rejects_bad_connect_address(capsys):
    assert main(["submit", "sort", "--connect", "nonsense"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err


def test_generated_flags_match_run_options_fields():
    """The CLI execution flags are generated from RunOptions — every
    flaggable field must be accepted by every runner-backed command."""
    from repro.options import OPTION_FIELDS

    parser = build_parser()
    flaggable = [f for f in OPTION_FIELDS if f not in ("observe", "priority")]
    for command in ("tiers", "grid", "mba", "campaign"):
        sub = next(
            a for a in parser._subparsers._group_actions[0].choices.items()
            if a[0] == command
        )[1]
        dests = {action.dest for action in sub._actions}
        for field in flaggable:
            assert field in dests, (command, field)


def test_campaign_no_resume_clears_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["campaign", "repartition", "--sizes", "tiny", "--tiers", "0",
            "--cache-dir", cache_dir, "--quiet"]
    assert main(args) == 0
    capsys.readouterr()
    # resume is now the default: the second run is all cache hits
    assert main(args) == 0
    assert "cache_hits   : 1" in capsys.readouterr().out
    # --no-resume clears the cache first and re-executes
    assert main(args + ["--no-resume"]) == 0
    out = capsys.readouterr().out
    assert "cache_hits   : 0" in out  # the cache really was cleared
    assert "replayed     : 1" in out  # trace artifacts survive the clear


def test_unified_shuffle_flag_speeds_up_shuffles():
    """The discussion-section engine extension must help, not hurt."""
    from repro.spark.conf import SparkConf
    from repro.spark.context import SparkContext

    def run(unified: bool) -> tuple[float, int]:
        sc = SparkContext(
            conf=SparkConf(
                memory_tier=2,
                default_parallelism=8,
                num_executors=4,
                unified_shuffle=unified,
            )
        )
        out = (
            sc.parallelize([(i % 40, i) for i in range(4000)], 8)
            .group_by_key()
            .count()
        )
        remote = sum(m.remote_fetches for m in sc.jobs[-1].all_tasks())
        return sc.total_job_time(), remote, out

    stock_time, stock_remote, stock_out = run(False)
    unified_time, unified_remote, unified_out = run(True)
    assert unified_out == stock_out == 40
    assert unified_remote == 0 < stock_remote
    assert unified_time < stock_time
