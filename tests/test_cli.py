"""CLI entry point (``python -m repro``)."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sort" in out and "pagerank" in out
    assert "websearch" in out


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "77.8" in out
    assert "0.47" in out


def test_run_command(capsys):
    assert main(["run", "repartition", "--size", "tiny", "--tier", "2"]) == 0
    out = capsys.readouterr().out
    assert "verified      : True" in out
    assert "NVM reads" in out


def test_tiers_command(capsys):
    assert main(["tiers", "repartition", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Tier 3" in out and "vs T0" in out


def test_mba_command(capsys):
    assert main(["mba", "repartition", "--size", "tiny", "--tier", "2"]) == 0
    out = capsys.readouterr().out
    assert "MBA level" in out
    assert "latency-bound" in out


def test_invalid_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "terasort"])


def test_unified_shuffle_flag_speeds_up_shuffles():
    """The discussion-section engine extension must help, not hurt."""
    from repro.spark.conf import SparkConf
    from repro.spark.context import SparkContext

    def run(unified: bool) -> tuple[float, int]:
        sc = SparkContext(
            conf=SparkConf(
                memory_tier=2,
                default_parallelism=8,
                num_executors=4,
                unified_shuffle=unified,
            )
        )
        out = (
            sc.parallelize([(i % 40, i) for i in range(4000)], 8)
            .group_by_key()
            .count()
        )
        remote = sum(m.remote_fetches for m in sc.jobs[-1].all_tasks())
        return sc.total_job_time(), remote, out

    stock_time, stock_remote, stock_out = run(False)
    unified_time, unified_remote, unified_out = run(True)
    assert unified_out == stock_out == 40
    assert unified_remote == 0 < stock_remote
    assert unified_time < stock_time
