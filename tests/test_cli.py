"""CLI entry point (``python -m repro``)."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sort" in out and "pagerank" in out
    assert "websearch" in out


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "77.8" in out
    assert "0.47" in out


def test_run_command(capsys):
    assert main(["run", "repartition", "--size", "tiny", "--tier", "2"]) == 0
    out = capsys.readouterr().out
    assert "verified      : True" in out
    assert "NVM reads" in out


def test_tiers_command(capsys):
    assert main(["tiers", "repartition", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Tier 3" in out and "vs T0" in out


def test_mba_command(capsys):
    assert main(["mba", "repartition", "--size", "tiny", "--tier", "2"]) == 0
    out = capsys.readouterr().out
    assert "MBA level" in out
    assert "latency-bound" in out


def test_invalid_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "terasort"])


def test_campaign_command_with_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = [
        "campaign", "repartition", "--sizes", "tiny", "--tiers", "0", "2",
        "--workers", "2", "--cache-dir", cache_dir, "--quiet",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "campaign over 2 points" in out
    assert "executed     : 2" in out
    assert "cache_hits   : 0" in out

    # Immediate resumed re-run: all points replay from the cache.
    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "executed     : 0" in out
    assert "cache_hits   : 2" in out


def test_campaign_command_without_cache(capsys):
    assert main(["campaign", "repartition", "--sizes", "tiny",
                 "--tiers", "0", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "failures     : 0" in out
    assert "verified" in out


def test_tiers_command_accepts_workers(capsys):
    assert main(["tiers", "repartition", "--size", "tiny",
                 "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Tier 3" in out and "vs T0" in out


def test_unified_shuffle_flag_speeds_up_shuffles():
    """The discussion-section engine extension must help, not hurt."""
    from repro.spark.conf import SparkConf
    from repro.spark.context import SparkContext

    def run(unified: bool) -> tuple[float, int]:
        sc = SparkContext(
            conf=SparkConf(
                memory_tier=2,
                default_parallelism=8,
                num_executors=4,
                unified_shuffle=unified,
            )
        )
        out = (
            sc.parallelize([(i % 40, i) for i in range(4000)], 8)
            .group_by_key()
            .count()
        )
        remote = sum(m.remote_fetches for m in sc.jobs[-1].all_tasks())
        return sc.total_job_time(), remote, out

    stock_time, stock_remote, stock_out = run(False)
    unified_time, unified_remote, unified_out = run(True)
    assert unified_out == stock_out == 40
    assert unified_remote == 0 < stock_remote
    assert unified_time < stock_time
