"""ResultCache: hit/miss, durability, resume and corruption tolerance."""

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.runner.cache import CACHE_FILE, ResultCache


def _point(tier: int = 0) -> ExperimentConfig:
    return ExperimentConfig(workload="repartition", size="tiny", tier=tier)


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    config = _point()
    assert config not in cache
    assert cache.get(config) is None

    result = run_experiment(config)
    cache.put(config, result)
    assert config in cache and len(cache) == 1
    hit = cache.get(config)
    assert hit is not None
    assert hit.execution_time == result.execution_time
    assert hit.config == config


def test_cache_is_durable_across_instances(tmp_path):
    config = _point(tier=2)
    ResultCache(tmp_path).put(config, run_experiment(config))
    assert (tmp_path / CACHE_FILE).exists()

    fresh = ResultCache(tmp_path)
    assert fresh.load() == 1
    assert config in fresh
    assert _point(tier=0) not in fresh


def test_put_is_idempotent(tmp_path):
    cache = ResultCache(tmp_path)
    config = _point()
    result = run_experiment(config)
    cache.put(config, result)
    cache.put(config, result)
    assert len(ResultCache(tmp_path)) == 1


def test_clear_empties_the_store(tmp_path):
    cache = ResultCache(tmp_path)
    config = _point()
    cache.put(config, run_experiment(config))
    cache.clear()
    assert len(cache) == 0
    assert ResultCache(tmp_path).load() == 0


def test_corrupt_lines_are_skipped(tmp_path):
    """An unclean shutdown can truncate the last line; resume must survive."""
    cache = ResultCache(tmp_path)
    config = _point()
    cache.put(config, run_experiment(config))
    with (tmp_path / CACHE_FILE).open("a", encoding="utf-8") as fh:
        fh.write('{"key": "abc", "trunc')

    fresh = ResultCache(tmp_path)
    assert fresh.load() == 1
    assert config in fresh
