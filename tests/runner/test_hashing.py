"""Content-addressed config keys: stability and full-field sensitivity."""

import json

import pytest

from repro.analysis.resultstore import (
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.faults import FaultConfig
from repro.runner.hashing import config_hash


def test_hash_is_stable_for_equal_configs():
    a = ExperimentConfig(workload="sort", size="tiny", tier=2)
    b = ExperimentConfig(workload="sort", size="tiny", tier=2)
    assert a is not b
    assert config_hash(a) == config_hash(b)
    assert len(config_hash(a)) == 64  # sha256 hex


@pytest.mark.parametrize(
    "override",
    [
        {"size": "small"},
        {"tier": 3},
        {"num_executors": 2},
        {"executor_cores": 20},
        {"mba_percent": 50},
        {"cpu_socket": 0},
        {"label": "probe"},
        {"speculation": True},
        {"faults": FaultConfig(seed=1, task_crash_prob=0.1)},
    ],
)
def test_every_field_changes_the_hash(override):
    """The PR-2 bugfix: cpu_socket/label/faults/speculation must key the
    cache — a config differing only there is a different experiment."""
    base = ExperimentConfig(workload="sort", size="tiny", tier=2)
    assert config_hash(base) != config_hash(base.with_options(**override))


def test_engine_version_keys_the_hash(monkeypatch):
    """The PR-4 bugfix: cached results are engine outputs, so a new
    engine version must invalidate them — stale rows become misses
    instead of silently serving another engine's numbers."""
    import repro.runner.hashing as hashing

    base = ExperimentConfig(workload="sort", size="tiny", tier=2)
    before = config_hash(base)
    monkeypatch.setattr(hashing, "ENGINE_VERSION", hashing.ENGINE_VERSION + "-next")
    assert config_hash(base) != before


def test_fault_seed_changes_the_hash():
    base = ExperimentConfig(
        workload="sort", size="tiny", faults=FaultConfig(seed=1, task_crash_prob=0.1)
    )
    other = base.with_options(faults=FaultConfig(seed=2, task_crash_prob=0.1))
    assert config_hash(base) != config_hash(other)


# ------------------------------------------------------------- serialization
def test_config_round_trip_full_fidelity():
    config = ExperimentConfig(
        workload="lda", size="small", tier=3, num_executors=4,
        executor_cores=10, mba_percent=50, cpu_socket=0, label="x",
        faults=FaultConfig(seed=9, straggler_prob=0.2), speculation=True,
    )
    restored = config_from_dict(config_to_dict(config))
    assert restored == config
    assert config_hash(restored) == config_hash(config)


def test_config_dict_is_json_round_trippable():
    config = ExperimentConfig(workload="sort", faults=FaultConfig(seed=3))
    via_json = json.loads(json.dumps(config_to_dict(config)))
    assert config_from_dict(via_json) == config


def test_config_from_dict_tolerates_legacy_rows():
    """Rows written before PR 2 lack the new fields; defaults apply."""
    legacy = {
        "workload": "sort", "size": "tiny", "tier": 2,
        "num_executors": 1, "executor_cores": 40, "mba_percent": 100,
    }
    config = config_from_dict(legacy)
    assert config.faults is None and config.speculation is False
    assert config.label == ""


def test_result_round_trip_value_identical():
    result = run_experiment(
        ExperimentConfig(workload="repartition", size="tiny", tier=2)
    )
    restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
    assert restored.config == result.config
    assert restored.execution_time == result.execution_time
    assert restored.verified == result.verified
    assert restored.events == result.events
    assert restored.nvm_reads == result.nvm_reads
    assert restored.nvm_writes == result.nvm_writes
    assert restored.telemetry.elapsed == result.telemetry.elapsed
    for name, report in result.telemetry.energy.items():
        assert restored.telemetry.energy[name] == report
    assert result_to_dict(restored) == result_to_dict(result)


# -------------------------------------------------------------- memoization
def test_hash_memoizes_on_the_instance():
    """The PR-8 satellite: campaigns hash the same frozen config at
    resume filtering, trace keying and result caching — the digest is
    computed once per instance and then served from the memo."""
    config = ExperimentConfig(workload="sort", size="tiny", tier=2)
    assert "_config_hash_memo" not in config.__dict__
    first = config_hash(config)
    assert "_config_hash_memo" in config.__dict__
    assert config_hash(config) is first  # the memoized string itself


def test_memo_is_engine_version_sensitive(monkeypatch):
    """A memo recorded under one engine version must not be served
    under another — the version is part of the memo, not assumed."""
    import repro.runner.hashing as hashing

    config = ExperimentConfig(workload="sort", size="tiny", tier=2)
    before = config_hash(config)
    monkeypatch.setattr(
        hashing, "ENGINE_VERSION", hashing.ENGINE_VERSION + "-next"
    )
    assert config_hash(config) != before


def test_memo_does_not_leak_into_equality_or_serialization():
    a = ExperimentConfig(workload="sort", size="tiny", tier=2)
    b = ExperimentConfig(workload="sort", size="tiny", tier=2)
    config_hash(a)  # memoize on ``a`` only
    assert a == b and hash(a) == hash(b)
    assert config_to_dict(a) == config_to_dict(b)
    assert config_hash(a) == config_hash(b)
