"""CampaignRunner: parallelism, caching/resume, ordering, isolation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.resultstore import ResultStore
from repro.core.experiment import ExperimentConfig
from repro.runner import (
    CampaignError,
    CampaignRunner,
    run_campaign,
)

#: The Fig. 4 axes, shrunk to the tiny size for test speed.
FIG4_GRID = [
    ExperimentConfig(
        workload="repartition", size="tiny", tier=tier,
        num_executors=executors, executor_cores=cores,
    )
    for tier in (0, 2)
    for executors in (1, 4)
    for cores in (10, 40)
]


def store_rows(results, path):
    """Serialize results through a ResultStore and read the rows back."""
    store = ResultStore(path)
    for result in results:
        store.append(result)
    return store.load()


# ------------------------------------------------------------------ identity
def test_parallel_campaign_value_identical_to_serial(tmp_path):
    """Acceptance: a 4-worker Fig. 4 campaign == the serial loop."""
    serial = run_campaign(FIG4_GRID)
    parallel = run_campaign(FIG4_GRID, workers=4)
    assert len(serial.results) == len(parallel.results) == len(FIG4_GRID)
    assert store_rows(serial.results, tmp_path / "serial.jsonl") == store_rows(
        parallel.results, tmp_path / "parallel.jsonl"
    )


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    points=st.lists(
        st.tuples(
            st.sampled_from([0, 1, 2, 3]),
            st.sampled_from([50, 100]),
            st.sampled_from([1, 4]),
        ),
        min_size=1,
        max_size=4,
    )
)
def test_worker_count_never_changes_values(tmp_path_factory, points):
    """Property: results are a pure function of the config list, not of
    the pool width."""
    configs = [
        ExperimentConfig(
            workload="repartition", size="tiny", tier=tier,
            mba_percent=mba, num_executors=executors,
        )
        for tier, mba, executors in points
    ]
    tmp_path = tmp_path_factory.mktemp("prop")
    serial = run_campaign(configs)
    parallel = run_campaign(configs, workers=4)
    assert store_rows(serial.results, tmp_path / "s.jsonl") == store_rows(
        parallel.results, tmp_path / "p.jsonl"
    )


def test_results_come_back_in_submission_order():
    configs = [
        ExperimentConfig(workload="repartition", size="tiny", tier=tier)
        for tier in (3, 0, 2, 1)
    ]
    report = run_campaign(configs, workers=4)
    assert [p.config.tier for p in report.points] == [3, 0, 2, 1]
    assert [r.config.tier for r in report.results] == [3, 0, 2, 1]
    assert [p.index for p in report.points] == [0, 1, 2, 3]


# ------------------------------------------------------------- cache / resume
def test_rerun_is_all_cache_hits(tmp_path):
    """Acceptance: an immediate re-run executes 0 experiments."""
    cache_dir = tmp_path / "cache"
    first = run_campaign(FIG4_GRID, workers=2, cache_dir=cache_dir)
    assert first.executed == len(FIG4_GRID) and first.cache_hits == 0

    rerun = run_campaign(FIG4_GRID, workers=2, cache_dir=cache_dir)
    assert rerun.executed == 0
    assert rerun.cache_hits == len(FIG4_GRID)
    assert store_rows(first.results, tmp_path / "a.jsonl") == store_rows(
        rerun.results, tmp_path / "b.jsonl"
    )


def test_partial_cache_resumes_the_remainder(tmp_path):
    """Interrupted-campaign semantics: finished points replay from the
    cache, only the rest execute."""
    cache_dir = tmp_path / "cache"
    half = FIG4_GRID[: len(FIG4_GRID) // 2]
    run_campaign(half, cache_dir=cache_dir)

    full = run_campaign(FIG4_GRID, cache_dir=cache_dir)
    assert full.cache_hits == len(half)
    assert full.executed == len(FIG4_GRID) - len(half)
    assert len(full.results) == len(FIG4_GRID)


def test_resume_false_clears_the_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    run_campaign(FIG4_GRID[:2], cache_dir=cache_dir)
    fresh = run_campaign(FIG4_GRID[:2], cache_dir=cache_dir, resume=False)
    assert fresh.executed == 2 and fresh.cache_hits == 0
    # ... but the fresh run re-populated it for the next resume.
    again = run_campaign(FIG4_GRID[:2], cache_dir=cache_dir)
    assert again.executed == 0 and again.cache_hits == 2


def test_duplicate_points_execute_once():
    config = ExperimentConfig(workload="repartition", size="tiny")
    report = run_campaign([config, config, config])
    assert report.executed == 1
    assert report.deduplicated == 2
    assert len(report.results) == 3
    times = {r.execution_time for r in report.results}
    assert len(times) == 1


# --------------------------------------------------------- failure isolation
def test_one_crashed_point_does_not_kill_the_campaign():
    bad = ExperimentConfig(workload="repartition", size="no-such-size")
    configs = [FIG4_GRID[0], bad, FIG4_GRID[1]]
    for workers in (None, 2):
        report = run_campaign(configs, workers=workers)
        assert len(report.results) == 2
        assert len(report.failures) == 1
        failed = report.failures[0]
        assert failed.index == 1
        assert failed.error is not None and "no-such-size" in failed.error
        assert report.points[0].ok and report.points[2].ok
        with pytest.raises(CampaignError, match="no-such-size"):
            report.raise_on_failure()


def test_failed_points_are_not_cached(tmp_path):
    cache_dir = tmp_path / "cache"
    bad = ExperimentConfig(workload="repartition", size="no-such-size")
    run_campaign([bad], cache_dir=cache_dir)
    rerun = run_campaign([bad], cache_dir=cache_dir)
    assert rerun.cache_hits == 0
    assert len(rerun.failures) == 1


def test_result_for_lookup():
    report = run_campaign(FIG4_GRID[:3])
    target = FIG4_GRID[1]
    assert report.result_for(target).config == target
    with pytest.raises(KeyError):
        report.result_for(ExperimentConfig(workload="sort", size="large"))


# ----------------------------------------------------------------- progress
def test_progress_reports_counts_and_eta():
    snapshots = []
    runner = CampaignRunner(workers=0, progress=snapshots.append)
    runner.run(FIG4_GRID[:3])
    assert snapshots  # emitted at least once per resolved point
    final = snapshots[-1]
    assert final.completed == final.total == 3
    assert final.executed == 3 and final.failed == 0
    assert final.percent == pytest.approx(100.0)
    assert final.eta_seconds == pytest.approx(0.0)
    assert "3/3" in final.describe()
    # completed counts never decrease
    assert all(
        a.completed <= b.completed for a, b in zip(snapshots, snapshots[1:])
    )


def test_invalid_worker_count_rejected():
    with pytest.raises(ValueError):
        CampaignRunner(workers=-1)


# ------------------------------------------------------------ observability
def test_campaign_writes_per_point_and_merged_artifacts(tmp_path):
    import json

    from repro.obs import ObsConfig
    from repro.runner.hashing import config_hash

    configs = FIG4_GRID[:2]
    obs = ObsConfig(
        trace_path=str(tmp_path / "merged.trace.json"),
        metrics_path=str(tmp_path / "merged.metrics.json"),
        artifact_dir=str(tmp_path / "obs"),
    )
    report = run_campaign(configs, observe=obs)

    # One artifact pair per point, keyed by the point's config hash.
    for config in configs:
        key = config_hash(config)
        point_trace = tmp_path / "obs" / f"{key}.trace.json"
        point_metrics = tmp_path / "obs" / f"{key}.metrics.json"
        assert point_trace.exists() and point_metrics.exists()
        payload = json.loads(point_metrics.read_text())
        assert payload["run"]["config_hash"] == key
        assert payload["run"]["label"] == config.describe()

    assert report.artifacts == {
        "trace": obs.trace_path,
        "metrics": obs.metrics_path,
    }
    merged_trace = json.loads((tmp_path / "merged.trace.json").read_text())
    assert merged_trace["otherData"]["points"] == 2
    merged_metrics = json.loads((tmp_path / "merged.metrics.json").read_text())
    assert merged_metrics["counters"]["campaign.points_merged"] == 2.0
    assert merged_metrics["counters"]["campaign.executed"] == 2.0


def test_campaign_observability_does_not_change_results(tmp_path):
    from repro.obs import ObsConfig

    configs = FIG4_GRID[:3]
    plain = run_campaign(configs)
    observed = run_campaign(
        configs,
        observe=ObsConfig(artifact_dir=str(tmp_path / "obs")),
        workers=2,
    )
    assert store_rows(plain.results, tmp_path / "plain.jsonl") == store_rows(
        observed.results, tmp_path / "observed.jsonl"
    )


def test_resumed_campaign_does_not_reemit_artifacts(tmp_path):
    """Cache hits never re-execute, so their per-point artifacts must
    survive untouched — while still joining the merged campaign trace."""
    import json

    from repro.obs import ObsConfig
    from repro.runner.hashing import config_hash

    configs = FIG4_GRID[:2]
    cache_dir = tmp_path / "cache"
    obs = ObsConfig(trace_path=str(tmp_path / "merged.trace.json"))
    first = run_campaign(configs, cache_dir=cache_dir, observe=obs)
    assert first.executed == 2

    obs_dir = cache_dir / "obs"
    point_files = sorted(obs_dir.glob("*.trace.json"))
    assert len(point_files) == len(configs)
    before = {p: (p.stat().st_mtime_ns, p.read_bytes()) for p in point_files}

    resumed = run_campaign(configs, cache_dir=cache_dir, observe=obs)
    assert resumed.cache_hits == 2 and resumed.executed == 0
    after = {p: (p.stat().st_mtime_ns, p.read_bytes()) for p in point_files}
    assert after == before  # not rewritten, not even touched

    # The merged trace still covers both (cached) points ...
    merged = json.loads((tmp_path / "merged.trace.json").read_text())
    assert merged["otherData"]["points"] == 2
    # ... and the merged metrics count them as cache hits.
    assert resumed.artifacts["trace"] == obs.trace_path
    for config in configs:
        assert (obs_dir / f"{config_hash(config)}.trace.json").exists()
