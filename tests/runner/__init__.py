"""Campaign runner subsystem tests."""
