"""Tier definitions reproduce Table I exactly."""

import pytest

from repro.memory.tiers import (
    TIER_LOCAL_DRAM,
    TIER_LOCAL_NVM,
    TIER_REMOTE_DRAM,
    TIER_REMOTE_NVM,
    TierSpec,
    table1_tiers,
    tier_by_id,
)
from repro.memory.technology import DDR4_DRAM

#: The paper's Table I (idle latency ns, bandwidth GB/s).
TABLE_1 = {
    0: (77.8, 39.3),
    1: (130.9, 31.6),
    2: (172.1, 10.7),
    3: (231.3, 0.47),
}


@pytest.mark.parametrize("tier_id,expected", sorted(TABLE_1.items()))
def test_table1_idle_latency(tier_id, expected):
    tier = tier_by_id(tier_id)
    assert tier.idle_read_latency_ns == pytest.approx(expected[0], rel=1e-3)


@pytest.mark.parametrize("tier_id,expected", sorted(TABLE_1.items()))
def test_table1_bandwidth(tier_id, expected):
    tier = tier_by_id(tier_id)
    assert tier.read_bandwidth_gbps == pytest.approx(expected[1], rel=1e-2)


def test_latency_strictly_increases_with_tier():
    latencies = [t.idle_read_latency for t in table1_tiers()]
    assert latencies == sorted(latencies)
    assert len(set(latencies)) == 4


def test_bandwidth_strictly_decreases_with_tier():
    bandwidths = [t.read_bandwidth for t in table1_tiers()]
    assert bandwidths == sorted(bandwidths, reverse=True)


def test_tier_kinds():
    assert not TIER_LOCAL_DRAM.is_nvm
    assert not TIER_REMOTE_DRAM.is_nvm
    assert TIER_LOCAL_NVM.is_nvm
    assert TIER_REMOTE_NVM.is_nvm
    assert not TIER_LOCAL_DRAM.is_remote
    assert all(t.is_remote for t in table1_tiers()[1:])


def test_remote_paths_carry_hop_and_mlp_derating():
    local = TIER_LOCAL_DRAM.path()
    remote = TIER_REMOTE_DRAM.path()
    assert local.hop_latency == 0.0
    assert remote.hop_latency > 0.0
    assert local.mlp_factor == 1.0
    assert remote.mlp_factor < 1.0
    assert remote.bandwidth_cap < float("inf")


def test_remote_nvm_efficiency_collapse():
    assert TIER_REMOTE_NVM.efficiency < 0.1
    assert TIER_LOCAL_NVM.efficiency == 1.0


def test_write_latency_includes_hop():
    assert TIER_REMOTE_DRAM.idle_write_latency > TIER_LOCAL_DRAM.idle_write_latency


def test_tier_by_id_bounds():
    with pytest.raises(KeyError):
        tier_by_id(4)
    with pytest.raises(KeyError):
        tier_by_id(-1)


def test_tierspec_validation():
    with pytest.raises(ValueError):
        TierSpec(tier_id=-1, name="x", technology=DDR4_DRAM, dimm_count=1)
    with pytest.raises(ValueError):
        TierSpec(tier_id=0, name="x", technology=DDR4_DRAM, dimm_count=0)
    with pytest.raises(ValueError):
        TierSpec(tier_id=0, name="x", technology=DDR4_DRAM, dimm_count=1, efficiency=0)
