"""AccessCounters arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.memory.counters import AccessCounters, TrafficTotals

counter_ints = st.integers(min_value=0, max_value=10**12)


def make(seed: int) -> AccessCounters:
    return AccessCounters(
        media_reads=seed,
        media_writes=seed * 2,
        bytes_read=seed * 64,
        bytes_written=seed * 128,
        random_reads=seed,
        random_writes=seed // 2,
    )


def test_defaults_zero():
    c = AccessCounters()
    assert c.total_accesses == 0
    assert c.total_bytes == 0
    assert c.write_ratio == 0.0


def test_write_ratio():
    c = AccessCounters(media_reads=3, media_writes=1)
    assert c.write_ratio == 0.25


def test_add_accumulates():
    a, b = make(10), make(5)
    a.add(b)
    assert a.media_reads == 15
    assert a.bytes_written == 15 * 128


def test_plus_operator_does_not_mutate():
    a, b = make(10), make(5)
    c = a + b
    assert c.media_reads == 15
    assert a.media_reads == 10


def test_snapshot_is_independent():
    a = make(10)
    snap = a.snapshot()
    a.add(make(1))
    assert snap.media_reads == 10
    assert a.media_reads == 11


@given(x=counter_ints, y=counter_ints)
def test_delta_inverts_add(x, y):
    base = AccessCounters(media_reads=x, media_writes=y)
    later = base.snapshot()
    later.add(AccessCounters(media_reads=y, media_writes=x))
    delta = later.delta(base)
    assert delta.media_reads == y
    assert delta.media_writes == x


def test_traffic_totals_buckets():
    totals = TrafficTotals()
    totals.category("shuffle").add(make(2))
    totals.category("cache").add(make(3))
    totals.category("shuffle").add(make(1))
    assert totals.category("shuffle").media_reads == 3
    grand = totals.total()
    assert grand.media_reads == 6
    assert set(totals.by_category) == {"shuffle", "cache"}
