"""Memory Mode blending model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.memory_mode import (
    MISS_OVERHEAD,
    MemoryModeConfig,
    app_direct_vs_memory_mode_latency,
    crossover_hit_rate,
    estimate_hit_rate,
    memory_mode_technology,
)
from repro.memory.technology import DDR4_DRAM, OPTANE_DCPM
from repro.units import gib


def test_config_validation():
    with pytest.raises(ValueError):
        MemoryModeConfig(dram_cache_bytes=0, nvm_capacity_bytes=gib(1))
    with pytest.raises(ValueError):
        MemoryModeConfig(dram_cache_bytes=gib(2), nvm_capacity_bytes=gib(1))
    config = MemoryModeConfig(dram_cache_bytes=gib(1), nvm_capacity_bytes=gib(8))
    assert config.visible_capacity == gib(8)


def test_hit_rate_estimator_regimes():
    assert estimate_hit_rate(0, gib(1)) == 1.0
    assert estimate_hit_rate(gib(1), 0) == 0.0
    # Fits in cache → near-perfect, capped below 1 (conflict misses).
    assert estimate_hit_rate(gib(0.5), gib(1)) == pytest.approx(0.95)
    # 2x oversubscribed → about half the near-perfect rate.
    assert estimate_hit_rate(gib(2), gib(1)) == pytest.approx(0.475)
    # Floor.
    assert estimate_hit_rate(gib(1000), gib(1)) == pytest.approx(0.05)


@given(st.floats(min_value=0.0, max_value=1.0))
def test_blended_latency_between_endpoints(hit_rate):
    tech = memory_mode_technology(hit_rate)
    assert DDR4_DRAM.read_latency <= tech.read_latency
    assert tech.read_latency <= OPTANE_DCPM.read_latency + MISS_OVERHEAD


@given(st.floats(min_value=0.0, max_value=1.0))
def test_blended_bandwidth_between_endpoints(hit_rate):
    tech = memory_mode_technology(hit_rate)
    assert OPTANE_DCPM.dimm_read_bandwidth <= tech.dimm_read_bandwidth + 1e-6
    assert tech.dimm_read_bandwidth <= DDR4_DRAM.dimm_read_bandwidth + 1e-6


def test_latency_monotone_in_hit_rate():
    latencies = [
        memory_mode_technology(h).read_latency for h in (0.0, 0.25, 0.5, 0.75, 1.0)
    ]
    assert latencies == sorted(latencies, reverse=True)


def test_perfect_hit_rate_is_dram_latency():
    tech = memory_mode_technology(1.0)
    assert tech.read_latency == pytest.approx(DDR4_DRAM.read_latency)
    assert tech.dimm_read_bandwidth == pytest.approx(DDR4_DRAM.dimm_read_bandwidth)


def test_memory_mode_is_volatile_with_nvm_capacity():
    tech = memory_mode_technology(0.8)
    assert not tech.persistent
    assert tech.dimm_capacity == OPTANE_DCPM.dimm_capacity
    assert tech.static_power > OPTANE_DCPM.static_power  # both populations


def test_hit_rate_validation():
    with pytest.raises(ValueError):
        memory_mode_technology(1.5)


def test_crossover_exists_and_is_low():
    """Below the crossover, Memory Mode is worse than plain App Direct."""
    h_star = crossover_hit_rate()
    assert 0.0 < h_star < 0.5
    app_direct, below = app_direct_vs_memory_mode_latency(h_star / 2)
    _, above = app_direct_vs_memory_mode_latency(min(1.0, h_star * 2))
    assert below > app_direct
    assert above < app_direct


def test_memory_mode_experiment_end_to_end():
    from repro.core.memory_mode_experiment import memory_mode_sweep

    results = memory_mode_sweep("repartition", "tiny", hit_rates=(0.3, 0.95))
    assert all(r.verified for r in results)
    low, high = results
    assert high.execution_time < low.execution_time
