"""CXL memory-expander technology and tier."""

import pytest

from repro.memory.cxl import (
    CXL_EXPANDER,
    CXL_LINK_LATENCY,
    cxl_technology_with_latency,
    cxl_tier,
    optane_vs_cxl_specs,
)
from repro.memory.technology import DDR4_DRAM, OPTANE_DCPM
from repro.units import ns_to_s


def test_cxl_latency_between_dram_and_optane():
    assert DDR4_DRAM.read_latency < CXL_EXPANDER.read_latency
    assert CXL_EXPANDER.read_latency > OPTANE_DCPM.read_latency  # 188 vs 172 ns
    assert CXL_EXPANDER.read_latency == pytest.approx(
        DDR4_DRAM.read_latency + CXL_LINK_LATENCY
    )


def test_cxl_is_symmetric_unlike_optane():
    assert CXL_EXPANDER.write_latency == CXL_EXPANDER.read_latency
    assert CXL_EXPANDER.dimm_write_bandwidth == CXL_EXPANDER.dimm_read_bandwidth
    assert CXL_EXPANDER.write_amplification(64) == 1.0


def test_cxl_bandwidth_far_above_optane():
    specs = optane_vs_cxl_specs()
    assert specs["cxl"][1] > 2 * specs["optane"][1]
    # ...while latencies are in the same class.
    assert specs["cxl"][0] == pytest.approx(specs["optane"][0], rel=0.15)


def test_cxl_tier_spec():
    tier = cxl_tier()
    assert tier.tier_id == 2
    assert tier.dimm_count == 4
    assert tier.technology is CXL_EXPANDER
    assert not tier.technology.persistent


def test_latency_variant():
    fast = cxl_technology_with_latency(60.0)
    slow = cxl_technology_with_latency(300.0)
    assert fast.read_latency < CXL_EXPANDER.read_latency < slow.read_latency
    assert fast.read_latency == pytest.approx(
        DDR4_DRAM.read_latency + ns_to_s(60.0)
    )
    with pytest.raises(ValueError):
        cxl_technology_with_latency(-1.0)


def test_cxl_workload_between_dram_and_optane():
    """End to end: a latency-bound workload on CXL sits between DRAM and
    Optane — nearer Optane than its healthy bandwidth would suggest,
    the paper's Takeaway 4 extended to the next technology."""
    from repro.core.experiment import ExperimentConfig, run_experiment
    from repro.core.substitution import run_with_technology

    dram_time = run_experiment(
        ExperimentConfig(workload="repartition", size="tiny", tier=0)
    ).execution_time
    optane_time = run_experiment(
        ExperimentConfig(workload="repartition", size="tiny", tier=2)
    ).execution_time

    outcome = run_with_technology(CXL_EXPANDER, "repartition", "tiny")
    assert outcome.verified
    cxl_time = outcome.execution_time

    assert dram_time < cxl_time < optane_time
    # Despite ~5x Optane's bandwidth and no write asymmetry, link latency
    # alone costs a substantial share of the Optane gap (Takeaway 4).
    assert (cxl_time - dram_time) > 0.25 * (optane_time - dram_time)
