"""MemoryDevice service model: latency, bandwidth, queueing, counters."""

import pytest

from repro.memory.device import (
    AccessProfile,
    LOCAL_PATH,
    MemoryDevice,
    PathCharacteristics,
)
from repro.memory.technology import DDR4_DRAM, OPTANE_DCPM
from repro.units import MB, gbps_to_bps, ns_to_s


@pytest.fixture
def dram(env):
    return MemoryDevice(env, "dram0", DDR4_DRAM, dimm_count=2)


@pytest.fixture
def nvm(env):
    return MemoryDevice(env, "nvm0", OPTANE_DCPM, dimm_count=4)


def test_profile_validation():
    with pytest.raises(ValueError):
        AccessProfile(bytes_read=-1)


def test_profile_scaling_and_addition():
    p = AccessProfile(bytes_read=100, bytes_written=50, random_reads=10, random_writes=5)
    half = p.scaled(0.5)
    assert half.bytes_read == 50
    assert half.random_writes == 2.5
    total = half + half
    assert total.total_bytes == p.total_bytes
    assert AccessProfile().is_empty
    assert not p.is_empty


def test_capacity_and_peaks(dram, nvm):
    assert dram.capacity == 2 * DDR4_DRAM.dimm_capacity
    assert dram.peak_read_bandwidth == pytest.approx(gbps_to_bps(39.3))
    assert nvm.peak_read_bandwidth == pytest.approx(gbps_to_bps(10.7))
    assert nvm.peak_write_bandwidth < nvm.peak_read_bandwidth


def test_pointer_chase_latency_matches_spec(env, dram):
    """At MLP 1, each random read costs exactly the idle latency."""
    service = dram.service_time(
        AccessProfile(random_reads=1000), mlp_read=1.0, mlp_write=1.0
    )
    assert service == pytest.approx(1000 * ns_to_s(77.8))


def test_mlp_overlaps_random_reads(env, dram):
    chase = dram.service_time(AccessProfile(random_reads=1000), mlp_read=1.0)
    overlapped = dram.service_time(AccessProfile(random_reads=1000), mlp_read=4.0)
    assert overlapped == pytest.approx(chase / 4)


def test_nvm_writes_cost_more_than_reads(nvm):
    reads = nvm.service_time(AccessProfile(random_reads=1000), mlp_read=1.0)
    writes = nvm.service_time(AccessProfile(random_writes=1000), mlp_write=1.0)
    assert writes > reads


def test_hop_latency_added_per_access(dram):
    local = dram.service_time(AccessProfile(random_reads=100), mlp_read=1.0)
    remote = dram.service_time(
        AccessProfile(random_reads=100),
        path=PathCharacteristics(hop_latency=ns_to_s(53.1)),
        mlp_read=1.0,
    )
    assert remote - local == pytest.approx(100 * ns_to_s(53.1))


def test_streaming_uses_core_bandwidth_when_lower(dram):
    nbytes = 10 * MB
    service = dram.service_time(
        AccessProfile(bytes_read=nbytes), core_stream_bw=gbps_to_bps(1.0)
    )
    assert service == pytest.approx(nbytes / gbps_to_bps(1.0))


def test_streaming_capped_by_path(dram):
    nbytes = 10 * MB
    capped = dram.service_time(
        AccessProfile(bytes_read=nbytes),
        path=PathCharacteristics(bandwidth_cap=gbps_to_bps(0.5)),
        core_stream_bw=float("inf"),
    )
    assert capped == pytest.approx(nbytes / gbps_to_bps(0.5))


def test_fair_share_under_concurrency(env, nvm):
    """Concurrent streams each get a fraction of device bandwidth."""
    elapsed = {}

    def stream(env, tag, n_peers):
        profile = AccessProfile(bytes_read=8 * MB)
        start = env.now
        yield from nvm.access(profile, core_stream_bw=float("inf"))
        elapsed[tag] = env.now - start

    env.process(stream(env, "solo", 1))
    env.run()
    solo = elapsed["solo"]

    for i in range(4):
        env.process(stream(env, f"peer{i}", 4))
    env.run()
    # Rates are sampled at admission: the first-admitted stream may see an
    # empty device, but later ones share — the average burst slows down.
    peers = [elapsed[f"peer{i}"] for i in range(4)]
    assert max(peers) > solo * 2
    assert sum(peers) / len(peers) > solo * 1.5


def test_queue_blocks_beyond_capacity(env):
    device = MemoryDevice(env, "tiny", OPTANE_DCPM, dimm_count=1)
    # Queue depth = 4 for one Optane DIMM.
    finished = []

    def burst(env, tag):
        yield from device.access(AccessProfile(random_reads=10_000), mlp_read=1.0)
        finished.append((tag, env.now))

    for i in range(8):
        env.process(burst(env, i))
    env.run()
    times = sorted(t for _, t in finished)
    # Two queueing waves: the second four finish strictly later.
    assert times[4] > times[3]


def test_mba_throttles_streaming_not_latency(env, nvm):
    stream_profile = AccessProfile(bytes_read=8 * MB)
    latency_profile = AccessProfile(random_reads=10_000)

    stream_full = nvm.service_time(stream_profile)
    latency_full = nvm.service_time(latency_profile)
    nvm.set_bandwidth_cap(0.1)
    stream_throttled = nvm.service_time(stream_profile)
    latency_throttled = nvm.service_time(latency_profile)

    assert stream_throttled > stream_full * 5
    assert latency_throttled == pytest.approx(latency_full)


def test_mba_fraction_validation(nvm):
    with pytest.raises(ValueError):
        nvm.set_bandwidth_cap(0.0)
    with pytest.raises(ValueError):
        nvm.set_bandwidth_cap(1.5)


def test_record_updates_counters_and_dimms(env, nvm):
    profile = AccessProfile(
        bytes_read=1024, bytes_written=512, random_reads=100, random_writes=50
    )
    nvm.record(profile)
    counters = nvm.counters
    assert counters.random_reads == 100
    assert counters.random_writes == 50
    # Streamed bytes touch ceil(bytes/granule) granules + 1 per random op.
    assert counters.media_reads == 4 + 100
    assert counters.media_writes == 2 + 50
    # Interleaving spreads across 4 DIMMs.
    per_dimm = nvm.dimms[0].counters
    assert per_dimm.media_reads == pytest.approx(counters.media_reads / 4, abs=1)


def test_access_process_returns_elapsed(env, dram):
    def proc(env):
        elapsed = yield from dram.access(AccessProfile(random_reads=1000))
        return elapsed

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(env.now)
    assert p.value > 0


def test_empty_access_is_free(env, dram):
    def proc(env):
        elapsed = yield from dram.access(AccessProfile())
        return elapsed

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0
    assert env.now == 0.0


def test_busy_time_tracked(env, dram):
    def proc(env):
        yield from dram.access(AccessProfile(bytes_read=MB))

    env.process(proc(env))
    env.run()
    assert dram.busy_time == pytest.approx(env.now)


def test_path_validation():
    with pytest.raises(ValueError):
        PathCharacteristics(hop_latency=-1)
    with pytest.raises(ValueError):
        PathCharacteristics(efficiency=0)
    with pytest.raises(ValueError):
        PathCharacteristics(mlp_factor=1.5)


def test_effective_mlp_floored_at_one():
    path = PathCharacteristics(mlp_factor=0.1)
    assert path.effective_mlp(4.0) == 1.0
    assert path.effective_mlp(20.0) == pytest.approx(2.0)
    assert LOCAL_PATH.effective_mlp(8.0) == 8.0
