"""Property-based tests of the device service model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.device import AccessProfile, MemoryDevice, PathCharacteristics
from repro.memory.technology import DDR4_DRAM, OPTANE_DCPM
from repro.sim import Environment
from repro.units import ns_to_s

volumes = st.floats(min_value=0.0, max_value=1e8, allow_nan=False)
counts = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def fresh(tech=OPTANE_DCPM, dimms=4) -> MemoryDevice:
    return MemoryDevice(Environment(), "dev", tech, dimm_count=dimms)


@given(bytes_read=volumes, bytes_written=volumes, reads=counts, writes=counts)
@settings(max_examples=60)
def test_service_time_nonnegative_and_finite(bytes_read, bytes_written, reads, writes):
    device = fresh()
    profile = AccessProfile(
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        random_reads=reads,
        random_writes=writes,
    )
    service = device.service_time(profile)
    assert service >= 0.0
    assert service < float("inf")
    if profile.is_empty:
        assert service == 0.0


@given(reads=st.floats(min_value=1.0, max_value=1e6), extra=st.floats(min_value=1.0, max_value=1e6))
@settings(max_examples=40)
def test_more_random_reads_never_faster(reads, extra):
    device = fresh()
    base = device.service_time(AccessProfile(random_reads=reads))
    more = device.service_time(AccessProfile(random_reads=reads + extra))
    assert more >= base


@given(nbytes=st.floats(min_value=1.0, max_value=1e8))
@settings(max_examples=40)
def test_dram_streams_never_slower_than_nvm(nbytes):
    dram = fresh(DDR4_DRAM, dimms=2)
    nvm = fresh(OPTANE_DCPM, dimms=4)
    profile = AccessProfile(bytes_written=nbytes)
    assert dram.service_time(profile, core_stream_bw=float("inf")) <= nvm.service_time(
        profile, core_stream_bw=float("inf")
    )


@given(fraction=st.sampled_from([0.1, 0.2, 0.5, 0.9, 1.0]), nbytes=st.floats(min_value=1e4, max_value=1e8))
@settings(max_examples=40)
def test_mba_throttling_monotone(fraction, nbytes):
    device = fresh()
    profile = AccessProfile(bytes_read=nbytes)
    full = device.service_time(profile)
    device.set_bandwidth_cap(fraction)
    throttled = device.service_time(profile)
    assert throttled >= full - 1e-12


@given(hop_ns=st.floats(min_value=0.0, max_value=500.0), reads=st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=40)
def test_hop_latency_monotone(hop_ns, reads):
    device = fresh()
    profile = AccessProfile(random_reads=reads)
    local = device.service_time(profile, mlp_read=1.0)
    remote = device.service_time(
        profile, path=PathCharacteristics(hop_latency=ns_to_s(hop_ns)), mlp_read=1.0
    )
    assert remote >= local


@given(mlp=st.floats(min_value=1.0, max_value=32.0))
@settings(max_examples=40)
def test_mlp_never_hurts(mlp):
    device = fresh()
    profile = AccessProfile(random_reads=10_000)
    chase = device.service_time(profile, mlp_read=1.0)
    overlapped = device.service_time(profile, mlp_read=mlp)
    assert overlapped <= chase + 1e-12


@given(
    parts=st.integers(min_value=1, max_value=8),
    reads=st.floats(min_value=100.0, max_value=1e5),
    nbytes=st.floats(min_value=1e4, max_value=1e7),
)
@settings(max_examples=30)
def test_service_time_superadditive_under_splitting(parts, reads, nbytes):
    """Splitting a burst into chunks never *reduces* total service time
    (each chunk re-pays nothing, but rates are identical when idle)."""
    device = fresh()
    whole = device.service_time(
        AccessProfile(random_reads=reads, bytes_read=nbytes)
    )
    split = sum(
        device.service_time(
            AccessProfile(random_reads=reads / parts, bytes_read=nbytes / parts)
        )
        for _ in range(parts)
    )
    assert split == pytest.approx(whole, rel=1e-6)


@given(reads=st.integers(min_value=0, max_value=10**6), writes=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40)
def test_record_counters_consistent(reads, writes):
    device = fresh()
    device.record(AccessProfile(random_reads=reads, random_writes=writes))
    assert device.counters.random_reads == reads
    assert device.counters.random_writes == writes
    assert device.counters.media_reads >= reads
    assert device.counters.media_writes >= writes
