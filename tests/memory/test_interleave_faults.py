"""Interleave policy blending and NVM aging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.device import AccessProfile, MemoryDevice
from repro.memory.faults import (
    END_OF_LIFE_BANDWIDTH_FACTOR,
    END_OF_LIFE_LATENCY_FACTOR,
    age_device,
    aged_technology,
    degradation_factors,
)
from repro.memory.interleave import InterleavePolicy, interleaved_technology
from repro.memory.technology import DDR4_DRAM, OPTANE_DCPM


# ------------------------------------------------------------------ interleave
def test_policy_validation():
    with pytest.raises(ValueError):
        InterleavePolicy(dram_fraction=1.5)


@given(st.floats(min_value=0.0, max_value=1.0))
def test_interleave_latency_between_endpoints(fraction):
    tech = interleaved_technology(InterleavePolicy(fraction))
    assert DDR4_DRAM.read_latency <= tech.read_latency <= OPTANE_DCPM.read_latency


def test_interleave_pure_endpoints():
    pure_dram = interleaved_technology(InterleavePolicy(1.0))
    assert pure_dram.read_latency == pytest.approx(DDR4_DRAM.read_latency)
    pure_nvm = interleaved_technology(InterleavePolicy(0.0))
    assert pure_nvm.read_latency == pytest.approx(OPTANE_DCPM.read_latency)


def test_interleave_bandwidth_exceeds_weighted_mean():
    """Parallel controllers: 50/50 interleave beats the plain average."""
    tech = interleaved_technology(InterleavePolicy(0.5))
    mean_bw = 0.5 * DDR4_DRAM.dimm_read_bandwidth + 0.5 * OPTANE_DCPM.dimm_read_bandwidth
    assert tech.dimm_read_bandwidth > mean_bw


def test_interleave_is_volatile():
    assert not interleaved_technology(InterleavePolicy(0.5)).persistent


# ------------------------------------------------------------------ aging
def test_degradation_endpoints():
    assert degradation_factors(0.0) == (1.0, 1.0)
    latency, bandwidth = degradation_factors(1.0)
    assert latency == END_OF_LIFE_LATENCY_FACTOR
    assert bandwidth == END_OF_LIFE_BANDWIDTH_FACTOR
    # Clamped beyond end of life.
    assert degradation_factors(5.0) == degradation_factors(1.0)
    with pytest.raises(ValueError):
        degradation_factors(-0.1)


def test_aged_technology_monotone():
    fresh = OPTANE_DCPM
    mid = aged_technology(fresh, 0.5)
    old = aged_technology(fresh, 1.0)
    assert fresh.read_latency < mid.read_latency < old.read_latency
    assert fresh.dimm_read_bandwidth > mid.dimm_read_bandwidth > old.dimm_read_bandwidth
    assert "worn 50%" in mid.name


def test_age_device_context_restores(env):
    device = MemoryDevice(env, "nvm", OPTANE_DCPM, dimm_count=2)
    fresh_service = device.service_time(AccessProfile(random_reads=1000), mlp_read=1.0)
    with age_device(device, 0.8):
        aged_service = device.service_time(
            AccessProfile(random_reads=1000), mlp_read=1.0
        )
        assert aged_service > fresh_service * 2
        assert device.dimms[0].technology.name.endswith("(worn 80%)")
    assert device.technology is OPTANE_DCPM
    assert device.service_time(
        AccessProfile(random_reads=1000), mlp_read=1.0
    ) == pytest.approx(fresh_service)


def test_aged_workload_runs_slower():
    from repro.spark.conf import SparkConf
    from repro.spark.context import SparkContext
    from repro.workloads import get_workload

    def run(wear: float) -> float:
        sc = SparkContext(conf=SparkConf(memory_tier=2))
        device = sc.executors[0].memory.device
        with age_device(device, wear):
            result = get_workload("repartition").run(sc, "tiny")
        assert result.verified
        return result.execution_time

    assert run(0.9) > run(0.0)
