"""Energy model, membind allocator, MBA context manager, wear tracking."""

import math

import pytest

from repro.memory.allocator import (
    InterleavedAllocator,
    MembindAllocator,
    OutOfMemoryError,
)
from repro.memory.counters import AccessCounters
from repro.memory.device import AccessProfile, MemoryDevice
from repro.memory.energy import DimmEnergyModel, device_energy_report
from repro.memory.mba import BandwidthAllocator, VALID_LEVELS
from repro.memory.technology import DDR4_DRAM, OPTANE_DCPM
from repro.memory.wear import WearTracker
from repro.units import CACHE_LINE, gib


# --------------------------------------------------------------------- energy
def test_static_energy_scales_with_time_and_dimms():
    model = DimmEnergyModel(DDR4_DRAM)
    static, read, write = model.energy(AccessCounters(), elapsed=10.0, dimm_count=2)
    assert static == pytest.approx(DDR4_DRAM.static_power * 10.0 * 2)
    assert read == 0.0 and write == 0.0


def test_dynamic_energy_per_line():
    model = DimmEnergyModel(OPTANE_DCPM)
    counters = AccessCounters(bytes_read=64 * 100, bytes_written=64 * 10)
    _, read, write = model.energy(counters, elapsed=0.0)
    assert read == pytest.approx(100 * OPTANE_DCPM.read_energy_per_line)
    assert write == pytest.approx(10 * OPTANE_DCPM.write_energy_per_line)


def test_energy_validation():
    model = DimmEnergyModel(DDR4_DRAM)
    with pytest.raises(ValueError):
        model.energy(AccessCounters(), elapsed=-1.0)
    with pytest.raises(ValueError):
        model.energy(AccessCounters(), elapsed=1.0, dimm_count=0)


def test_device_energy_report(env):
    device = MemoryDevice(env, "nvm", OPTANE_DCPM, dimm_count=4)
    device.record(AccessProfile(bytes_read=64 * 1000))
    report = device_energy_report(device, elapsed=5.0)
    assert report.dimm_count == 4
    assert report.static_joules == pytest.approx(OPTANE_DCPM.static_power * 5.0 * 4)
    assert report.read_joules > 0
    assert report.total_joules == report.static_joules + report.dynamic_joules
    assert report.per_dimm_joules == pytest.approx(report.total_joules / 4)
    assert report.average_power == pytest.approx(report.total_joules / 5.0)


# ------------------------------------------------------------------- allocator
def test_membind_allocates_and_frees(env):
    device = MemoryDevice(env, "dram", DDR4_DRAM, dimm_count=2)
    allocator = MembindAllocator(device)
    grant = allocator.allocate(gib(1))
    assert allocator.used_bytes == gib(1)
    assert allocator.live_allocations == 1
    allocator.free(grant)
    assert allocator.used_bytes == 0


def test_membind_strict_no_fallback(env):
    device = MemoryDevice(env, "dram", DDR4_DRAM, dimm_count=2)
    allocator = MembindAllocator(device)
    with pytest.raises(OutOfMemoryError):
        allocator.allocate(device.capacity + 1)


def test_membind_double_free_rejected(env):
    device = MemoryDevice(env, "dram", DDR4_DRAM, dimm_count=2)
    allocator = MembindAllocator(device)
    grant = allocator.allocate(1024)
    allocator.free(grant)
    with pytest.raises(ValueError):
        allocator.free(grant)


def test_membind_peak_usage_tracked(env):
    device = MemoryDevice(env, "dram", DDR4_DRAM, dimm_count=2)
    allocator = MembindAllocator(device)
    a = allocator.allocate(1000)
    b = allocator.allocate(2000)
    allocator.free(a)
    assert allocator.peak_usage == 3000
    allocator.free_all()
    assert allocator.free_bytes == device.capacity


def test_interleaved_splits_evenly(env):
    devices = [
        MemoryDevice(env, f"d{i}", DDR4_DRAM, dimm_count=1) for i in range(3)
    ]
    allocator = InterleavedAllocator(devices)
    grants = allocator.allocate(10)
    assert sorted(g.nbytes for g in grants) == [3, 3, 4]
    allocator.free(grants)


def test_interleaved_rolls_back_on_oom(env):
    small = MemoryDevice(env, "small", DDR4_DRAM, dimm_count=1)
    allocator = InterleavedAllocator([small, small])
    with pytest.raises(OutOfMemoryError):
        allocator.allocate(small.capacity * 4)


# ------------------------------------------------------------------------ MBA
def test_mba_levels():
    assert VALID_LEVELS == tuple(range(10, 101, 10))


def test_mba_context_applies_and_restores(env):
    device = MemoryDevice(env, "nvm", OPTANE_DCPM, dimm_count=4)
    with BandwidthAllocator([device], percent=30):
        assert device.mba_fraction == pytest.approx(0.3)
    assert device.mba_fraction == 1.0


def test_mba_invalid_level(env):
    device = MemoryDevice(env, "nvm", OPTANE_DCPM, dimm_count=4)
    with pytest.raises(ValueError):
        BandwidthAllocator([device], percent=33)
    with pytest.raises(ValueError):
        BandwidthAllocator([])


# ----------------------------------------------------------------------- wear
def test_dram_never_wears(env):
    device = MemoryDevice(env, "dram", DDR4_DRAM, dimm_count=2)
    device.record(AccessProfile(random_writes=10**6))
    tracker = WearTracker([device])
    worst = tracker.worst(elapsed=100.0)
    assert math.isinf(worst.projected_lifetime_seconds)
    assert worst.wear_fraction == 0.0


def test_nvm_wear_accumulates(env):
    device = MemoryDevice(env, "nvm", OPTANE_DCPM, dimm_count=1)
    device.record(AccessProfile(random_writes=10**7))
    tracker = WearTracker([device])
    worst = tracker.worst(elapsed=3600.0)
    assert 0.0 < worst.wear_fraction < 1.0
    assert worst.projected_lifetime_seconds < math.inf
    assert worst.projected_lifetime_years > 0
    assert tracker.total_media_writes() > 0


def test_wear_lifetime_shrinks_with_write_rate(env):
    light = MemoryDevice(env, "light", OPTANE_DCPM, dimm_count=1)
    heavy = MemoryDevice(env, "heavy", OPTANE_DCPM, dimm_count=1)
    light.record(AccessProfile(random_writes=10**5))
    heavy.record(AccessProfile(random_writes=10**7))
    lifetime_light = WearTracker([light]).worst(100.0).projected_lifetime_seconds
    lifetime_heavy = WearTracker([heavy]).worst(100.0).projected_lifetime_seconds
    assert lifetime_heavy < lifetime_light
