"""Memory technology parameter validation and derived quantities."""

import math

import pytest

from repro.memory.technology import (
    DDR4_DRAM,
    OPTANE_DCPM,
    MemoryTechnology,
    technology_by_name,
)
from repro.units import gbps_to_bps, gib, ns_to_s


def test_builtin_dram_matches_table1_components():
    assert DDR4_DRAM.kind == "dram"
    assert DDR4_DRAM.read_latency == pytest.approx(ns_to_s(77.8))
    # 2 DIMMs per socket → 39.3 GB/s (Table I Tier 0).
    assert 2 * DDR4_DRAM.dimm_read_bandwidth == pytest.approx(gbps_to_bps(39.3))
    assert not DDR4_DRAM.persistent
    assert math.isinf(DDR4_DRAM.endurance_writes_per_cell)


def test_builtin_optane_matches_table1_components():
    assert OPTANE_DCPM.kind == "nvm"
    assert OPTANE_DCPM.read_latency == pytest.approx(ns_to_s(172.1))
    # 4 DIMMs → 10.7 GB/s (Table I Tier 2).
    assert 4 * OPTANE_DCPM.dimm_read_bandwidth == pytest.approx(gbps_to_bps(10.7))
    assert OPTANE_DCPM.persistent
    assert OPTANE_DCPM.write_latency > OPTANE_DCPM.read_latency


def test_optane_write_read_asymmetry():
    assert OPTANE_DCPM.write_read_latency_ratio == pytest.approx(309.8 / 172.1)
    assert OPTANE_DCPM.dimm_write_bandwidth < OPTANE_DCPM.dimm_read_bandwidth
    assert DDR4_DRAM.write_read_latency_ratio == 1.0


def test_optane_less_parallel_than_dram():
    assert OPTANE_DCPM.queue_depth_per_dimm < DDR4_DRAM.queue_depth_per_dimm
    assert OPTANE_DCPM.mlp_read < DDR4_DRAM.mlp_read
    assert OPTANE_DCPM.mlp_write < OPTANE_DCPM.mlp_read


def test_write_amplification_for_subgranule_writes():
    assert OPTANE_DCPM.write_amplification(64) == pytest.approx(4.0)
    assert OPTANE_DCPM.write_amplification(256) == 1.0
    assert OPTANE_DCPM.write_amplification(1024) == 1.0
    assert DDR4_DRAM.write_amplification(64) == 1.0


def test_write_amplification_rejects_nonpositive():
    with pytest.raises(ValueError):
        OPTANE_DCPM.write_amplification(0)


def test_kind_validation():
    with pytest.raises(ValueError):
        MemoryTechnology(
            name="bogus",
            kind="sram",
            read_latency=1e-9,
            write_latency=1e-9,
            dimm_read_bandwidth=1e9,
            dimm_write_bandwidth=1e9,
            dimm_capacity=gib(1),
            static_power=1.0,
            read_energy_per_line=1e-9,
            write_energy_per_line=1e-9,
        )


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        MemoryTechnology(
            name="bogus",
            kind="dram",
            read_latency=-1e-9,
            write_latency=1e-9,
            dimm_read_bandwidth=1e9,
            dimm_write_bandwidth=1e9,
            dimm_capacity=gib(1),
            static_power=1.0,
            read_energy_per_line=1e-9,
            write_energy_per_line=1e-9,
        )


@pytest.mark.parametrize(
    "name,expected",
    [
        ("dram", DDR4_DRAM),
        ("DDR4", DDR4_DRAM),
        ("nvm", OPTANE_DCPM),
        ("Optane", OPTANE_DCPM),
        ("dcpm", OPTANE_DCPM),
    ],
)
def test_lookup_by_name(name, expected):
    assert technology_by_name(name) is expected


def test_lookup_unknown_name():
    with pytest.raises(KeyError):
        technology_by_name("hbm")
