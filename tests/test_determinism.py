"""Determinism properties: the simulation is a pure function of its conf.

An identical ``(SparkConf, fault seed)`` pair must yield byte-identical
timelines and metrics on every run — with fault injection off, on, and
with speculative execution racing clones.  This is the repo's core
reproducibility contract: every figure regenerates exactly, and injected
failure schedules replay exactly.
"""

from __future__ import annotations

import json
import operator

import pytest

from repro.faults import FaultConfig
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.timeline import build_trace_events, timeline_summary

FAULT_REGIMES = {
    "none": None,
    "crashes": FaultConfig(seed=7, task_crash_prob=0.25),
    "executor-loss": FaultConfig(seed=2, executor_loss_prob=0.9),
    "fetch-failures": FaultConfig(seed=3, fetch_fail_prob=0.4),
    "stragglers": FaultConfig(
        seed=4, straggler_prob=0.12, straggler_multiplier=10.0
    ),
}


def run_workload(
    faults: FaultConfig | None, tier: int = 1, speculation: bool = False
) -> tuple[list, SparkContext]:
    conf = SparkConf(
        memory_tier=tier,
        num_executors=2,
        executor_cores=4,
        default_parallelism=8,
        faults=faults,
        speculation=speculation,
        speculation_interval=1e-3,
    )
    sc = SparkContext(conf=conf)
    sc.parallelize(range(100), 8).map(lambda x: x).collect()  # warm-up job
    result = (
        sc.parallelize(range(2000), 8)
        .map(lambda x: (x % 50, x))
        .reduce_by_key(operator.add)
        .collect()
    )
    return result, sc


def fingerprint(sc: SparkContext) -> str:
    """Every observable output, serialized byte-stably."""
    return json.dumps(
        {
            "trace": build_trace_events(sc),
            "timeline": timeline_summary(sc),
            "jobs": [job.summary() for job in sc.jobs],
            "total_time": sc.total_job_time(),
        },
        sort_keys=True,
    )


@pytest.mark.parametrize("regime", sorted(FAULT_REGIMES))
def test_repeat_runs_are_byte_identical(regime):
    faults = FAULT_REGIMES[regime]
    speculation = regime == "stragglers"
    first_result, first_sc = run_workload(faults, speculation=speculation)
    second_result, second_sc = run_workload(faults, speculation=speculation)
    assert first_result == second_result
    assert fingerprint(first_sc) == fingerprint(second_sc)
    if faults is not None:
        assert (
            first_sc.fault_injector.counts()
            == second_sc.fault_injector.counts()
        )
    first_sc.stop()
    second_sc.stop()


def test_fault_seed_changes_the_schedule():
    """Different seeds must actually produce different failure schedules
    (otherwise the seed parameter is dead and the regimes above prove
    nothing)."""
    fingerprints = set()
    for seed in range(4):
        _, sc = run_workload(FaultConfig(seed=seed, task_crash_prob=0.25))
        fingerprints.add(fingerprint(sc))
        sc.stop()
    assert len(fingerprints) > 1


def test_disabled_faults_match_no_fault_config():
    """An all-zero FaultConfig is byte-identical to ``faults=None`` —
    the injection hooks must not perturb the event sequence when idle."""
    _, plain = run_workload(None)
    _, zeroed = run_workload(FaultConfig(seed=123))
    assert fingerprint(plain) == fingerprint(zeroed)
    assert zeroed.fault_injector is None  # all-zero config is not enabled
    plain.stop()
    zeroed.stop()


def test_results_identical_across_fault_regimes():
    """Whatever is injected, the answer never changes."""
    baseline, base_sc = run_workload(None)
    base_sc.stop()
    for regime, faults in FAULT_REGIMES.items():
        if faults is None:
            continue
        result, sc = run_workload(faults, speculation=regime == "stragglers")
        assert result == baseline, regime
        sc.stop()
