"""Unit conversion helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_time_roundtrip():
    assert units.ns_to_s(100) == pytest.approx(1e-7)
    assert units.s_to_ns(units.ns_to_s(77.8)) == pytest.approx(77.8)


def test_bandwidth_roundtrip():
    assert units.gbps_to_bps(39.3) == pytest.approx(39.3e9)
    assert units.bps_to_gbps(units.gbps_to_bps(10.7)) == pytest.approx(10.7)


def test_capacity_helpers():
    assert units.mib(1) == 1024**2
    assert units.gib(2) == 2 * 1024**3


@given(st.floats(min_value=1e-12, max_value=1e12, allow_nan=False))
def test_conversions_are_inverse(value):
    assert units.s_to_ns(units.ns_to_s(value)) == pytest.approx(value)
    assert units.bps_to_gbps(units.gbps_to_bps(value)) == pytest.approx(value)


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2048) == "2 KiB"
    assert "MiB" in units.fmt_bytes(5 * units.MB)
    assert "GiB" in units.fmt_bytes(3 * units.GB)
    assert "TiB" in units.fmt_bytes(5 * 1024**4)


def test_fmt_time_scales():
    assert "ns" in units.fmt_time(5e-9)
    assert "us" in units.fmt_time(5e-6)
    assert "ms" in units.fmt_time(5e-3)
    assert units.fmt_time(5.0) == "5.00 s"
    assert "min" in units.fmt_time(300.0)


def test_granularities():
    assert units.CACHE_LINE == 64
    assert units.NVM_MEDIA_GRANULE == 256
