"""The self-contained PEP 517/660 build backend."""

import sys
import zipfile
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "_build_backend"))
import repro_build_backend as backend  # noqa: E402


def test_requires_are_empty():
    assert backend.get_requires_for_build_wheel() == []
    assert backend.get_requires_for_build_editable() == []


def test_build_wheel_contains_package(tmp_path):
    name = backend.build_wheel(str(tmp_path))
    assert name == "repro-1.0.0-py3-none-any.whl"
    names = zipfile.ZipFile(tmp_path / name).namelist()
    assert "repro/__init__.py" in names
    assert "repro/spark/rdd.py" in names
    assert "repro-1.0.0.dist-info/METADATA" in names
    assert "repro-1.0.0.dist-info/RECORD" in names
    assert not any("__pycache__" in n for n in names)


def test_build_editable_points_at_src(tmp_path):
    name = backend.build_editable(str(tmp_path))
    archive = zipfile.ZipFile(tmp_path / name)
    pth = archive.read("__editable__.repro-1.0.0.pth").decode().strip()
    assert pth.endswith("src")
    assert (Path(pth) / "repro" / "__init__.py").exists()


def test_metadata_declares_numpy(tmp_path):
    backend.build_wheel(str(tmp_path))
    archive = zipfile.ZipFile(tmp_path / "repro-1.0.0-py3-none-any.whl")
    metadata = archive.read("repro-1.0.0.dist-info/METADATA").decode()
    assert "Requires-Dist: numpy>=1.24" in metadata
    assert "Name: repro" in metadata


def test_prepare_metadata(tmp_path):
    dist_info = backend.prepare_metadata_for_build_wheel(str(tmp_path))
    assert (tmp_path / dist_info / "METADATA").exists()
    assert (tmp_path / dist_info / "WHEEL").exists()


def test_record_hashes_are_valid(tmp_path):
    import base64
    import hashlib

    name = backend.build_wheel(str(tmp_path))
    archive = zipfile.ZipFile(tmp_path / name)
    record = archive.read("repro-1.0.0.dist-info/RECORD").decode()
    for line in record.strip().splitlines():
        arcname, digest, _size = line.split(",")
        if not digest:
            continue
        data = archive.read(arcname)
        expected = base64.urlsafe_b64encode(
            hashlib.sha256(data).digest()
        ).rstrip(b"=").decode()
        assert digest == f"sha256={expected}", arcname
