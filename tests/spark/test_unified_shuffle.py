"""The unified-memory shuffle extension (SparkConf.unified_shuffle)."""

import pytest

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext


def make_sc(unified: bool, executors: int = 4) -> SparkContext:
    return SparkContext(
        conf=SparkConf(
            memory_tier=2,
            num_executors=executors,
            default_parallelism=8,
            unified_shuffle=unified,
        )
    )


DATA = [(i % 13, i) for i in range(2000)]


def shuffle_job(sc: SparkContext):
    return dict(
        sc.parallelize(DATA, 8).reduce_by_key(lambda a, b: a + b).collect()
    )


def test_results_identical():
    assert shuffle_job(make_sc(False)) == shuffle_job(make_sc(True))


def test_no_remote_fetches_when_unified():
    sc = make_sc(True)
    shuffle_job(sc)
    tasks = sc.jobs[-1].all_tasks()
    assert sum(m.remote_fetches for m in tasks) == 0
    assert sum(m.local_fetches for m in tasks) > 0


def test_stock_mode_has_remote_fetches():
    sc = make_sc(False)
    shuffle_job(sc)
    assert sum(m.remote_fetches for m in sc.jobs[-1].all_tasks()) > 0


def test_unified_faster_with_many_executors():
    stock = make_sc(False)
    shuffle_job(stock)
    unified = make_sc(True)
    shuffle_job(unified)
    assert unified.total_job_time() < stock.total_job_time()


def test_unified_neutral_for_single_executor():
    """With one executor every fetch is already local; the remaining gain
    is only the skipped deserialization — small, never negative."""
    stock = make_sc(False, executors=1)
    shuffle_job(stock)
    unified = make_sc(True, executors=1)
    shuffle_job(unified)
    assert unified.total_job_time() <= stock.total_job_time()


def test_shuffle_bytes_still_accounted():
    sc = make_sc(True)
    shuffle_job(sc)
    tasks = sc.jobs[-1].all_tasks()
    assert sum(m.shuffle_bytes_read for m in tasks) > 0
    assert sum(m.shuffle_bytes_written for m in tasks) > 0
