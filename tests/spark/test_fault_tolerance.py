"""Failure-matrix tests for the fault-injection subsystem.

Every memory tier crossed with every fault class must converge on the
exact no-fault answer, with the mitigation counters accounting for what
was injected: task crashes are absorbed by bounded retry, executor loss
by blacklisting plus parent-stage resubmission, fetch failures by
recomputing the lost map output, and stragglers by speculative clones.
"""

from __future__ import annotations

import operator

import pytest

from repro.faults import FaultConfig
from repro.faults.errors import (
    StageAbortedError,
    TaskSetAbortedError,
)
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext

TIERS = (0, 1, 2, 3)

WORDS = ("spark", "memory", "tier", "dram", "nvm", "optane", "numa") * 500


def run_shuffle_job(
    tier: int,
    faults: FaultConfig | None = None,
    speculation: bool = False,
    warm_up: bool = False,
):
    """Key-grouped sum on ``tier``; returns (sorted results, context)."""
    conf = SparkConf(
        memory_tier=tier,
        num_executors=2,
        executor_cores=4,
        default_parallelism=8,
        faults=faults,
        speculation=speculation,
        speculation_interval=1e-3,
    )
    sc = SparkContext(conf=conf)
    if warm_up:
        sc.parallelize(range(100), 8).map(lambda x: x).collect()
    result = (
        sc.parallelize(range(2000), 8)
        .map(lambda x: (x % 50, x))
        .reduce_by_key(operator.add)
        .collect()
    )
    return sorted(result), sc


def mitigation(sc: SparkContext) -> dict[str, float]:
    totals: dict[str, float] = {}
    for job in sc.jobs:
        for key, value in job.mitigation_summary().items():
            totals[key] = totals.get(key, 0) + value
    return totals


@pytest.fixture(scope="module")
def baselines():
    """No-fault answers per tier (identical across tiers, but computed
    per tier so a tier-specific corruption cannot hide)."""
    answers = {}
    for tier in TIERS:
        result, sc = run_shuffle_job(tier)
        answers[tier] = result
        sc.stop()
    return answers


@pytest.mark.parametrize("tier", TIERS)
def test_task_crashes_are_retried(tier, baselines):
    result, sc = run_shuffle_job(
        tier, faults=FaultConfig(seed=7, task_crash_prob=0.25)
    )
    assert result == baselines[tier]
    counters = mitigation(sc)
    injected = sc.fault_injector.counts()
    assert injected["task_crashes"] >= 1
    # Crashes are the only enabled fault, so every recorded task failure
    # is one injected crash and vice versa.
    assert counters["task_failures"] == injected["task_crashes"]
    assert counters["task_attempts"] == 16 + injected["task_crashes"]
    sc.stop()


@pytest.mark.parametrize("tier", TIERS)
def test_executor_loss_is_survived(tier, baselines):
    result, sc = run_shuffle_job(
        tier, faults=FaultConfig(seed=2, executor_loss_prob=0.9)
    )
    assert result == baselines[tier]
    counters = mitigation(sc)
    injected = sc.fault_injector.counts()
    assert injected["executor_losses"] == 1  # capped at max_executor_losses
    assert counters["executors_lost"] == 1
    # The doomed executor really is dead, and at least one survived.
    alive = [e for e in sc.executors if e.alive]
    assert len(alive) == len(sc.executors) - 1
    sc.stop()


@pytest.mark.parametrize("tier", TIERS)
def test_fetch_failures_trigger_recompute(tier, baselines):
    result, sc = run_shuffle_job(
        tier, faults=FaultConfig(seed=3, fetch_fail_prob=0.4)
    )
    assert result == baselines[tier]
    counters = mitigation(sc)
    injected = sc.fault_injector.counts()
    assert injected["fetch_failures"] >= 1
    # One injected loss can cascade into several observed failures (the
    # shuffle stays incomplete until the map side is recomputed).
    assert counters["fetch_failures"] >= injected["fetch_failures"]
    assert counters["resubmitted_stages"] >= 1
    sc.stop()


def test_speculation_clones_beat_stragglers(baselines):
    result, sc = run_shuffle_job(
        3,
        faults=FaultConfig(
            seed=4, straggler_prob=0.12, straggler_multiplier=10.0
        ),
        speculation=True,
        warm_up=True,
    )
    assert result == baselines[3]
    counters = mitigation(sc)
    injected = sc.fault_injector.counts()
    assert injected["stragglers"] >= 1
    assert counters["speculative_launched"] >= 1
    assert counters["speculative_wins"] >= 1
    assert counters["speculative_wins"] <= counters["speculative_launched"]
    # Losing twins are recorded as KILLED attempts, never as failures.
    assert counters["task_failures"] == 0
    sc.stop()


def test_wordcount_acceptance_under_executor_loss():
    """The acceptance scenario: WordCount survives losing an executor."""
    conf = SparkConf(
        num_executors=4,
        executor_cores=4,
        default_parallelism=8,
        faults=FaultConfig(seed=2, executor_loss_prob=0.9),
    )
    sc = SparkContext(conf=conf)
    counts = dict(
        sc.parallelize(WORDS, 8)
        .map(lambda w: (w, 1))
        .reduce_by_key(operator.add)
        .collect()
    )
    assert counts == {word: 500 for word in set(WORDS)}
    counters = mitigation(sc)
    assert counters["executors_lost"] == 1
    assert counters["task_attempts"] > 16  # retries actually happened
    sc.stop()


def test_blacklisting_avoids_flaky_executor():
    _, sc = run_shuffle_job(0)
    scheduler = sc.task_scheduler
    flaky = scheduler.executors[0]
    for _ in range(sc.conf.blacklist_max_failures):
        scheduler._note_executor_failure(flaky)
    assert flaky.executor_id in scheduler.blacklisted
    assert flaky not in scheduler._healthy_pool()
    sc.stop()


def test_last_executor_is_never_blacklisted():
    conf = SparkConf(num_executors=1, executor_cores=4)
    sc = SparkContext(conf=conf)
    scheduler = sc.task_scheduler
    only = scheduler.executors[0]
    for _ in range(5):
        scheduler._note_executor_failure(only)
    assert only.executor_id not in scheduler.blacklisted
    sc.stop()


def test_task_set_aborts_after_bounded_retries():
    faults = FaultConfig(seed=1, task_crash_prob=1.0)
    conf = SparkConf(
        num_executors=2, executor_cores=4, default_parallelism=4, faults=faults
    )
    sc = SparkContext(conf=conf)
    with pytest.raises(TaskSetAbortedError) as excinfo:
        sc.parallelize(range(100), 4).map(lambda x: x).collect()
    assert excinfo.value.attempts == sc.conf.task_max_failures
    sc.stop()


def test_stage_aborts_after_bounded_resubmissions():
    faults = FaultConfig(seed=1, fetch_fail_prob=1.0, max_fetch_failures=None)
    conf = SparkConf(
        num_executors=2, executor_cores=4, default_parallelism=4, faults=faults
    )
    sc = SparkContext(conf=conf)
    with pytest.raises(StageAbortedError):
        (
            sc.parallelize(range(100), 4)
            .map(lambda x: (x % 5, x))
            .reduce_by_key(operator.add)
            .collect()
        )
    sc.stop()


def test_lost_executor_cache_is_recomputed(baselines):
    """Cached blocks die with their executor; lineage recomputes them."""
    faults = FaultConfig(seed=2, executor_loss_prob=0.9)
    conf = SparkConf(
        num_executors=2,
        executor_cores=4,
        default_parallelism=8,
        faults=faults,
    )
    sc = SparkContext(conf=conf)
    cached = sc.parallelize(range(2000), 8).map(lambda x: (x % 50, x)).cache()
    first = sorted(cached.reduce_by_key(operator.add).collect())
    second = sorted(cached.reduce_by_key(operator.add).collect())
    assert first == second == baselines[0]
    sc.stop()
