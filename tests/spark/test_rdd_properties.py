"""Property-based equivalence: RDD semantics vs plain-Python semantics.

Each property builds a fresh mini-context, runs a pipeline through the
full engine (DAG scheduler, executors, shuffle) and compares against the
obvious Python computation — catching partitioning, shuffle-routing and
aggregation bugs across arbitrary data shapes.
"""

from collections import Counter, defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext

SETTINGS = settings(max_examples=20, deadline=None)

records = st.lists(st.integers(min_value=-50, max_value=50), max_size=60)
pairs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), st.integers(-100, 100)),
    max_size=60,
)
partition_counts = st.integers(min_value=1, max_value=6)


def fresh_sc() -> SparkContext:
    return SparkContext(conf=SparkConf(memory_tier=0, default_parallelism=3))


@given(data=records, parts=partition_counts)
@SETTINGS
def test_collect_is_identity(data, parts):
    assert fresh_sc().parallelize(data, parts).collect() == data


@given(data=records, parts=partition_counts)
@SETTINGS
def test_map_equivalence(data, parts):
    out = fresh_sc().parallelize(data, parts).map(lambda x: 3 * x - 1).collect()
    assert out == [3 * x - 1 for x in data]


@given(data=records, parts=partition_counts)
@SETTINGS
def test_filter_equivalence(data, parts):
    out = fresh_sc().parallelize(data, parts).filter(lambda x: x % 2 == 0).collect()
    assert out == [x for x in data if x % 2 == 0]


@given(data=records, parts=partition_counts)
@SETTINGS
def test_count_equivalence(data, parts):
    assert fresh_sc().parallelize(data, parts).count() == len(data)


@given(data=pairs, parts=partition_counts)
@SETTINGS
def test_reduce_by_key_equivalence(data, parts):
    out = dict(
        fresh_sc().parallelize(data, parts).reduce_by_key(lambda a, b: a + b).collect()
    )
    expected = defaultdict(int)
    for k, v in data:
        expected[k] += v
    assert out == dict(expected)


@given(data=pairs, parts=partition_counts)
@SETTINGS
def test_group_by_key_preserves_multiset(data, parts):
    out = dict(fresh_sc().parallelize(data, parts).group_by_key().collect())
    expected: dict[int, Counter] = defaultdict(Counter)
    for k, v in data:
        expected[k][v] += 1
    assert {k: Counter(vs) for k, vs in out.items()} == dict(expected)


@given(data=pairs, parts=partition_counts)
@SETTINGS
def test_sort_by_key_is_sorted_permutation(data, parts):
    out = fresh_sc().parallelize(data, parts).sort_by_key().collect()
    assert [k for k, _ in out] == sorted(k for k, _ in data)
    assert Counter(out) == Counter(data)


@given(data=records, parts=partition_counts, new_parts=partition_counts)
@SETTINGS
def test_repartition_is_permutation(data, parts, new_parts):
    out = fresh_sc().parallelize(data, parts).repartition(new_parts).collect()
    assert Counter(out) == Counter(data)


@given(data=records, parts=partition_counts)
@SETTINGS
def test_distinct_equivalence(data, parts):
    out = fresh_sc().parallelize(data, parts).distinct().collect()
    assert sorted(out) == sorted(set(data))


@given(data=records, parts=partition_counts)
@SETTINGS
def test_sum_equivalence(data, parts):
    assert fresh_sc().parallelize(data, parts).sum() == sum(data)


@given(left=pairs, right=pairs)
@SETTINGS
def test_join_equivalence(left, right):
    sc = fresh_sc()
    out = sorted(sc.parallelize(left, 2).join(sc.parallelize(right, 2)).collect())
    expected = sorted(
        (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2
    )
    assert out == expected


@given(data=records, parts=partition_counts)
@SETTINGS
def test_union_with_self_doubles(data, parts):
    sc = fresh_sc()
    rdd = sc.parallelize(data, parts)
    assert rdd.union(rdd).count() == 2 * len(data)


@given(data=pairs, parts=partition_counts)
@SETTINGS
def test_count_by_key_equivalence(data, parts):
    out = fresh_sc().parallelize(data, parts).count_by_key()
    expected = Counter(k for k, _ in data)
    assert out == dict(expected)
