"""Executor mechanics: startup, dispatch, GC pressure, failure paths."""

import pytest

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.executor import (
    GC_WRITES_PER_CONCURRENT_TASK,
    STARTUP_RANDOM_WRITES,
)


def make_sc(**kwargs):
    return SparkContext(conf=SparkConf(memory_tier=2, default_parallelism=4, **kwargs))


def test_startup_happens_once_per_executor():
    sc = make_sc()
    executor = sc.executors[0]
    sc.parallelize(range(10), 2).count()
    first = executor._startup_done
    assert first is not None and first.triggered
    sc.parallelize(range(10), 2).count()
    assert executor._startup_done is first  # not re-run


def test_startup_traffic_lands_on_bound_tier():
    sc = make_sc()
    device = sc.executors[0].memory.device
    sc.parallelize(range(4), 2).count()
    # Startup alone writes at least its random-write budget.
    assert device.counters.random_writes >= STARTUP_RANDOM_WRITES


def test_first_job_pays_startup_later_jobs_do_not():
    sc = make_sc()
    sc.parallelize(range(100), 4).count()
    first = sc.jobs[0].duration
    sc.parallelize(range(100), 4).count()
    second = sc.jobs[1].duration
    assert first > second


def test_more_executors_more_startup_traffic():
    def startup_writes(executors):
        sc = make_sc(num_executors=executors)
        sc.parallelize(range(8), 8).count()
        return sum(
            e.memory.device.counters.random_writes for e in sc.executors[:1]
        ), sc

    single, _ = startup_writes(1)
    many_sc = make_sc(num_executors=4)
    many_sc.parallelize(range(8), 8).count()
    total_many = many_sc.executors[0].memory.device.counters.random_writes
    assert total_many > single  # 4 JVMs churned the same device


def test_dispatch_serializes_within_executor():
    """With one executor, many zero-work tasks still take >= n * overhead."""
    conf = SparkConf(memory_tier=0, default_parallelism=16, num_executors=1)
    sc = SparkContext(conf=conf)
    sc.parallelize(range(16), 16).count()
    stage = sc.jobs[0].stages[0]
    assert stage.duration >= 16 * conf.task_dispatch_overhead


def test_gc_constant_positive():
    assert GC_WRITES_PER_CONCURRENT_TASK > 0


def test_task_failure_propagates_to_driver():
    sc = make_sc()

    def boom(x):
        raise RuntimeError("user function failed")

    with pytest.raises(RuntimeError, match="user function failed"):
        sc.parallelize(range(4), 2).map(boom).collect()


def test_shuffle_spill_recorded_with_tiny_heap():
    """A heap far smaller than the shuffle volume must spill, not crash."""
    sc = SparkContext(
        conf=SparkConf(
            memory_tier=0,
            default_parallelism=2,
            executor_memory=64 * 1024,  # 64 KiB heap → ~38 KiB unified
        )
    )
    data = [(i % 50, "x" * 200) for i in range(2000)]
    out = sc.parallelize(data, 2).group_by_key().count()
    assert out == 50
    spilled = sum(m.spill_bytes for m in sc.jobs[-1].all_tasks())
    assert spilled > 0


def test_executor_count_matches_conf():
    sc = make_sc(num_executors=3)
    assert len(sc.executors) == 3
    assert {e.executor_id for e in sc.executors} == {0, 1, 2}


def test_all_executors_used_for_wide_stages():
    sc = make_sc(num_executors=4, executor_cores=4)
    sc.parallelize(range(64), 16).map(lambda x: x).count()
    used = {m.executor_id for m in sc.jobs[-1].all_tasks()}
    assert used == {0, 1, 2, 3}


def test_stage_broadcast_runs_per_executor_per_stage():
    sc = make_sc(num_executors=2)
    before = sc.executors[0].memory.device.counters.bytes_read
    sc.parallelize([("a", 1)], 2).reduce_by_key(lambda a, b: a + b).collect()
    # 2 stages x 2 executors broadcasts happened (plus task traffic).
    after = sc.executors[0].memory.device.counters.bytes_read
    assert after > before


def test_hdfs_write_path_charges_page_cache():
    sc = make_sc()
    device = sc.executors[0].memory.device
    rdd = sc.parallelize([f"row-{i}" for i in range(100)], 4)
    before = device.counters.bytes_written
    rdd.save_as_text_file("/out/x")
    after = device.counters.bytes_written
    assert after > before
    assert sc.hdfs.datanode.bytes_written > 0
