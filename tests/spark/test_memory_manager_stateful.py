"""Stateful property testing of the UnifiedMemoryManager.

Hypothesis drives random sequences of storage acquisitions, touches,
releases and execution borrows against a model of the Spark memory
invariants:

- accounted usage never exceeds the unified pool;
- execution never evicts below the protected storage floor
  (unless storage was already below it);
- every cached block the manager reports exists exactly once;
- eviction only ever removes least-recently-used blocks.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.spark.memory_manager import BlockId, UnifiedMemoryManager

UNIFIED = 10_000
FLOOR = 4_000


class MemoryManagerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.manager = UnifiedMemoryManager(UNIFIED, FLOOR)
        self.execution_held = 0.0
        self.next_block = 0

    # ------------------------------------------------------------------ rules
    @rule(nbytes=st.integers(min_value=1, max_value=6_000))
    def cache_block(self, nbytes: int) -> None:
        block = BlockId(rdd_id=1, partition=self.next_block)
        self.next_block += 1
        try:
            evicted = self.manager.acquire_storage(block, nbytes)
        except MemoryError:
            # Block cannot fit even after eviction — a legal refusal,
            # only when it genuinely exceeds what storage could get.
            assert nbytes > UNIFIED - self.manager.execution_used
            return
        assert block not in evicted
        assert self.manager.contains(block)

    @precondition(lambda self: self.manager.cached_blocks())
    @rule(data=st.data())
    def touch_block(self, data) -> None:
        block = data.draw(st.sampled_from(self.manager.cached_blocks()))
        self.manager.touch(block)
        # Touched block becomes most-recently-used (last in LRU order).
        assert self.manager.cached_blocks()[-1] == block

    @precondition(lambda self: self.manager.cached_blocks())
    @rule(data=st.data())
    def release_block(self, data) -> None:
        block = data.draw(st.sampled_from(self.manager.cached_blocks()))
        size = self.manager.block_size(block)
        freed = self.manager.release_block(block)
        assert freed == size
        assert not self.manager.contains(block)

    @rule(nbytes=st.integers(min_value=1, max_value=8_000))
    def borrow_execution(self, nbytes: int) -> None:
        storage_before = self.manager.storage_used
        granted, evicted = self.manager.acquire_execution(nbytes)
        assert 0 <= granted <= nbytes
        if granted < nbytes:
            # Shortfall only when storage is at/below the floor or empty.
            assert (
                self.manager.storage_used <= FLOOR
                or not self.manager.cached_blocks()
            )
        self.execution_held += granted
        assert self.manager.storage_used <= storage_before  # never grows

    @precondition(lambda self: self.execution_held > 0)
    @rule(fraction=st.floats(min_value=0.1, max_value=1.0))
    def release_execution(self, fraction: float) -> None:
        amount = self.execution_held * fraction
        self.manager.release_execution(amount)
        self.execution_held -= amount

    # -------------------------------------------------------------- invariants
    @invariant()
    def usage_within_pool(self) -> None:
        total = self.manager.storage_used + self.manager.execution_used
        assert total <= UNIFIED + 1e-6

    @invariant()
    def block_sizes_sum_to_storage(self) -> None:
        total = sum(
            self.manager.block_size(b) for b in self.manager.cached_blocks()
        )
        assert abs(total - self.manager.storage_used) < 1e-6

    @invariant()
    def free_is_consistent(self) -> None:
        expected = UNIFIED - self.manager.storage_used - self.manager.execution_used
        assert abs(self.manager.free - expected) < 1e-6


TestMemoryManagerStateful = MemoryManagerMachine.TestCase
TestMemoryManagerStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
