"""Narrow transformations and actions against Python-native equivalents."""

import pytest

from repro.spark.rdd import _slice_evenly


def test_parallelize_roundtrip(sc):
    data = list(range(100))
    assert sc.parallelize(data, 4).collect() == data


def test_map(sc):
    assert sc.parallelize(range(10), 3).map(lambda x: x * x).collect() == [
        x * x for x in range(10)
    ]


def test_filter(sc):
    out = sc.parallelize(range(20), 4).filter(lambda x: x % 3 == 0).collect()
    assert out == [x for x in range(20) if x % 3 == 0]


def test_flat_map(sc):
    out = sc.parallelize(["a b", "c d e"], 2).flat_map(str.split).collect()
    assert out == ["a", "b", "c", "d", "e"]


def test_map_partitions(sc):
    out = sc.parallelize(range(10), 5).map_partitions(lambda p: [sum(p)]).collect()
    assert sum(out) == sum(range(10))
    assert len(out) == 5


def test_keys_values_key_by(sc):
    pairs = sc.parallelize([(1, "a"), (2, "b")], 2)
    assert pairs.keys().collect() == [1, 2]
    assert pairs.values().collect() == ["a", "b"]
    keyed = sc.parallelize(["xx", "yyy"], 1).key_by(len).collect()
    assert keyed == [(2, "xx"), (3, "yyy")]


def test_glom_preserves_partitioning(sc):
    glommed = sc.parallelize(range(10), 2).glom().collect()
    assert len(glommed) == 2
    assert [x for part in glommed for x in part] == list(range(10))


def test_union(sc):
    a = sc.parallelize([1, 2], 2)
    b = sc.parallelize([3, 4, 5], 2)
    u = a.union(b)
    assert u.num_partitions == 4
    assert u.collect() == [1, 2, 3, 4, 5]


def test_distinct(sc):
    out = sc.parallelize([1, 2, 2, 3, 3, 3], 3).distinct().collect()
    assert sorted(out) == [1, 2, 3]


def test_sample_deterministic_and_bounded(sc):
    rdd = sc.parallelize(range(1000), 4)
    s1 = rdd.sample(0.1, seed=5).collect()
    s2 = sc.parallelize(range(1000), 4).sample(0.1, seed=5).collect()
    assert s1 == s2
    assert 0 < len(s1) < 400


def test_sample_validation(sc):
    with pytest.raises(ValueError):
        sc.parallelize([1], 1).sample(1.5)


def test_zip_with_index(sc):
    out = sc.parallelize(["a", "b", "c", "d", "e"], 3).zip_with_index().collect()
    assert out == [("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)]


def test_coalesce_reduces_partitions(sc):
    rdd = sc.parallelize(range(12), 6).coalesce(2)
    assert rdd.num_partitions == 2
    assert rdd.collect() == list(range(12))


def test_coalesce_noop_when_growing(sc):
    rdd = sc.parallelize(range(4), 2)
    assert rdd.coalesce(8) is rdd


# ------------------------------------------------------------------- actions
def test_count(sc):
    assert sc.parallelize(range(57), 5).count() == 57


def test_reduce(sc):
    assert sc.parallelize(range(1, 11), 4).reduce(lambda a, b: a + b) == 55


def test_reduce_empty_raises(sc):
    with pytest.raises(ValueError):
        sc.parallelize([], 1).reduce(lambda a, b: a + b)


def test_fold(sc):
    assert sc.parallelize([1, 2, 3], 3).fold(0, lambda a, b: a + b) == 6


def test_take_first(sc):
    rdd = sc.parallelize(range(100), 4)
    assert rdd.take(3) == [0, 1, 2]
    assert rdd.first() == 0


def test_first_empty_raises(sc):
    with pytest.raises(ValueError):
        sc.parallelize([], 2).first()


def test_top(sc):
    assert sc.parallelize([5, 1, 9, 3, 7], 2).top(2) == [9, 7]
    by_len = sc.parallelize(["a", "bbb", "cc"], 2).top(1, key=len)
    assert by_len == ["bbb"]


def test_sum_mean_max_min(sc):
    rdd = sc.parallelize([4.0, 1.0, 3.0, 2.0], 2)
    assert rdd.sum() == 10.0
    assert rdd.mean() == 2.5
    assert rdd.max() == 4.0
    assert rdd.min() == 1.0


def test_count_by_value(sc):
    out = sc.parallelize(["a", "b", "a", "a"], 2).count_by_value()
    assert out == {"a": 3, "b": 1}


def test_foreach_side_effect(sc):
    seen = []
    sc.parallelize(range(5), 2).foreach(seen.append)
    assert sorted(seen) == list(range(5))


def test_save_as_text_file(sc):
    rdd = sc.parallelize([f"line{i}" for i in range(10)], 2)
    rdd.save_as_text_file("/out/result")
    assert sc.hdfs.exists("/out/result")
    assert sorted(sc.hdfs.read_records("/out/result")) == sorted(
        f"line{i}" for i in range(10)
    )


# ------------------------------------------------------------------ internals
def test_slice_evenly_covers_all():
    slices = _slice_evenly(list(range(10)), 3)
    assert [len(s) for s in slices] == [4, 3, 3]
    assert [x for s in slices for x in s] == list(range(10))


def test_slice_evenly_more_slices_than_items():
    slices = _slice_evenly([1, 2], 5)
    assert len(slices) == 5
    assert sum(len(s) for s in slices) == 2


def test_slice_evenly_validation():
    with pytest.raises(ValueError):
        _slice_evenly([1], 0)


def test_rdd_requires_positive_partitions(sc):
    with pytest.raises(ValueError):
        sc.parallelize([1], 0)


def test_persist_requires_caching_level(sc):
    from repro.spark.storage_level import NONE

    rdd = sc.parallelize([1], 1)
    with pytest.raises(ValueError):
        rdd.persist(NONE)
