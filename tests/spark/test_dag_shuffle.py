"""DAG scheduler stage construction and the shuffle registry."""

import pytest

from repro.spark.shuffle import ShuffleManager
from repro.spark.stage import Stage, topological_order


def test_narrow_lineage_is_single_stage(sc):
    rdd = sc.parallelize(range(10), 2).map(lambda x: x).filter(lambda x: True)
    stage = sc.dag.build_stages(rdd)
    assert stage.parents == []
    assert not stage.is_shuffle_map
    assert stage.num_tasks == 2


def test_shuffle_creates_parent_stage(sc):
    rdd = sc.parallelize([("a", 1)], 2).reduce_by_key(lambda a, b: a + b)
    stage = sc.dag.build_stages(rdd)
    assert len(stage.parents) == 1
    assert stage.parents[0].is_shuffle_map


def test_chained_shuffles_create_stage_chain(sc):
    rdd = (
        sc.parallelize([("a", 1)], 2)
        .reduce_by_key(lambda a, b: a + b)
        .map(lambda kv: (kv[1], kv[0]))
        .group_by_key()
    )
    final = sc.dag.build_stages(rdd)
    order = topological_order(final)
    assert len(order) == 3
    assert [s.is_shuffle_map for s in order] == [True, True, False]


def test_shared_shuffle_deduplicated(sc):
    base = sc.parallelize([("a", 1)], 2).reduce_by_key(lambda a, b: a + b)
    left = base.map(lambda kv: kv)
    right = base.filter(lambda kv: True)
    final = left.union(right)
    stage = sc.dag.build_stages(final)
    # Both branches reference the SAME map stage.
    assert len(stage.parents) == 1


def test_join_has_one_shuffle_stage_for_tagged_union(sc):
    left = sc.parallelize([("x", 1)], 2)
    right = sc.parallelize([("x", 2)], 2)
    joined = left.join(right)
    final = sc.dag.build_stages(joined)
    order = topological_order(final)
    # cogroup shuffles the tagged union once.
    assert sum(1 for s in order if s.is_shuffle_map) == 1


def test_completed_shuffle_not_rerun(sc):
    counted = sc.parallelize([("a", 1), ("a", 2)], 2).reduce_by_key(
        lambda a, b: a + b
    )
    counted.collect()
    jobs_before = len(sc.jobs)
    counted.collect()  # second action reuses the shuffle output
    second_job = sc.jobs[-1]
    assert len(sc.jobs) == jobs_before + 1
    # Only the result stage ran on the second job.
    assert len(second_job.stages) == 1


def test_stage_describe(sc):
    rdd = sc.parallelize([1], 1)
    stage = sc.dag.build_stages(rdd)
    assert "ResultStage" in stage.describe()


def test_topological_order_parents_first():
    leaf_rdd = object()
    s0 = Stage(stage_id=0, rdd=None)  # type: ignore[arg-type]
    s1 = Stage(stage_id=1, rdd=None, parents=[s0])  # type: ignore[arg-type]
    s2 = Stage(stage_id=2, rdd=None, parents=[s1, s0])  # type: ignore[arg-type]
    order = [s.stage_id for s in topological_order(s2)]
    assert order == [0, 1, 2]


# --------------------------------------------------------------------- shuffle
def test_shuffle_manager_lifecycle():
    manager = ShuffleManager()
    manager.register_shuffle(0, num_maps=2)
    assert manager.is_registered(0)
    assert not manager.is_complete(0)

    manager.add_map_output(0, 0, mapper_executor=0, buckets={0: [("k", 1)], 1: []})
    assert not manager.is_complete(0)
    manager.add_map_output(0, 1, mapper_executor=0, buckets={0: [("k", 2)]})
    assert manager.is_complete(0)

    segments = manager.fetch(0, 0)
    assert [seg.records for seg in segments] == [[("k", 1)], [("k", 2)]]
    # Empty buckets are skipped.
    assert manager.fetch(0, 1) == []


def test_shuffle_fetch_before_complete_raises():
    manager = ShuffleManager()
    manager.register_shuffle(1, num_maps=2)
    manager.add_map_output(1, 0, 0, {0: [1]})
    with pytest.raises(RuntimeError):
        manager.fetch(1, 0)


def test_shuffle_fetch_unknown_raises():
    with pytest.raises(KeyError):
        ShuffleManager().fetch(99, 0)


def test_shuffle_total_bytes():
    manager = ShuffleManager()
    manager.register_shuffle(0, num_maps=1)
    written = manager.add_map_output(
        0, 0, 0, {0: [("k", 1)] * 10}, record_bytes=50.0
    )
    assert written == 500.0
    assert manager.total_shuffle_bytes(0) == 500.0
    assert manager.total_shuffle_bytes(12345) == 0.0
    manager.clear()
    assert not manager.is_registered(0)


def test_register_idempotent():
    manager = ShuffleManager()
    manager.register_shuffle(0, num_maps=3)
    manager.add_map_output(0, 0, 0, {0: [1]})
    manager.register_shuffle(0, num_maps=3)  # must not reset state
    assert manager._shuffles[0].num_maps_registered == 1
