"""Partitioners and the record-size estimator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spark.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    _portable_hash,
)
from repro.spark.serializer import (
    deserialization_ops,
    estimate_record_bytes,
    serialization_ops,
    sizeof_value,
)


# ----------------------------------------------------------------- partitioner
def test_partitioner_validation():
    with pytest.raises(ValueError):
        HashPartitioner(0)


@given(st.one_of(st.integers(), st.text(), st.tuples(st.integers(), st.text())))
def test_hash_partitioner_in_range(key):
    p = HashPartitioner(7)
    assert 0 <= p.partition(key) < 7


@given(st.text())
def test_portable_hash_deterministic_for_strings(key):
    assert _portable_hash(key) == _portable_hash(key)
    assert _portable_hash(key) >= 0 or isinstance(key, str)


def test_portable_hash_bytes_and_tuples():
    assert _portable_hash(b"abc") == _portable_hash(b"abc")
    assert _portable_hash((1, "a")) == _portable_hash((1, "a"))


def test_hash_partitioner_equality():
    assert HashPartitioner(4) == HashPartitioner(4)
    assert HashPartitioner(4) != HashPartitioner(5)


def test_range_partitioner_orders_keys():
    p = RangePartitioner(3, bounds=[10, 20])
    assert p.partition(5) == 0
    assert p.partition(10) == 0
    assert p.partition(15) == 1
    assert p.partition(20) == 1
    assert p.partition(25) == 2


def test_range_partitioner_bounds_validation():
    with pytest.raises(ValueError):
        RangePartitioner(3, bounds=[1])


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200))
def test_range_partitioner_from_sample_is_monotone(keys):
    p = RangePartitioner.from_sample(4, keys)
    ordered = sorted(keys)
    partitions = [p.partition(k) for k in ordered]
    assert partitions == sorted(partitions)
    assert all(0 <= x < p.num_partitions for x in partitions)


def test_range_partitioner_from_empty_sample():
    p = RangePartitioner.from_sample(4, [])
    assert p.partition("anything") == 0


def test_base_partitioner_abstract():
    with pytest.raises(NotImplementedError):
        Partitioner(2).partition("x")


# ------------------------------------------------------------------ serializer
def test_sizeof_scalars():
    assert sizeof_value(None) == 8.0
    assert sizeof_value(True) == 8.0
    assert sizeof_value(42) == 16.0
    assert sizeof_value(3.14) == 16.0


def test_sizeof_numpy():
    arr = np.zeros(100, dtype=np.float64)
    assert sizeof_value(arr) >= 800
    assert sizeof_value(np.float64(1.0)) >= 8


def test_sizeof_containers_nested():
    flat = sizeof_value((1, 2))
    nested = sizeof_value((1, (2, 3)))
    assert nested > flat
    assert sizeof_value({"k": 1}) > sizeof_value(1)
    assert sizeof_value({1, 2}) > 0


def test_estimate_record_bytes_empty_default():
    assert estimate_record_bytes([]) == 64.0


def test_estimate_record_bytes_reasonable_for_strings():
    records = ["x" * 100] * 1000
    estimate = estimate_record_bytes(records)
    assert 100 <= estimate <= 300


@given(st.lists(st.integers(), min_size=1, max_size=500))
def test_estimate_record_bytes_positive(records):
    assert estimate_record_bytes(records) >= 1.0


def test_serialization_ops_linear():
    assert serialization_ops(1000) == pytest.approx(500)
    assert deserialization_ops(1000) == pytest.approx(700)
    assert serialization_ops(0) == 0.0
