"""Disk-backed storage levels: MEMORY_AND_DISK and DISK_ONLY."""

import pytest

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.storage_level import DISK_ONLY, MEMORY_AND_DISK


def tiny_heap_sc(**kwargs):
    # 64 KiB heap → ~38 KiB unified pool: big blocks cannot stay in memory.
    return SparkContext(
        conf=SparkConf(memory_tier=0, default_parallelism=2,
                       executor_memory=64 * 1024, **kwargs)
    )


def big_data(sc):
    return sc.parallelize(["x" * 200 for _ in range(2000)], 2)


def test_disk_only_caches_to_disk():
    sc = tiny_heap_sc()
    rdd = big_data(sc).persist(DISK_ONLY)
    assert len(rdd.collect()) == 2000
    executor = sc.executors[0]
    assert executor.block_manager._disk  # blocks landed on disk
    assert not executor.block_manager._data  # nothing in memory
    # Second pass hits disk, not recompute.
    assert len(rdd.collect()) == 2000
    assert executor.block_manager.disk_hits == 2


def test_memory_and_disk_overflows_to_disk():
    sc = tiny_heap_sc()
    rdd = big_data(sc).persist(MEMORY_AND_DISK)
    rdd.collect()
    executor = sc.executors[0]
    # Heap too small: blocks went to disk instead of being dropped.
    assert executor.block_manager._disk
    rdd.collect()
    assert executor.block_manager.disk_hits > 0


def test_disk_hits_cost_disk_time():
    sc = tiny_heap_sc()
    rdd = big_data(sc).persist(DISK_ONLY)
    rdd.collect()
    disk_written = sc.hdfs.datanode.bytes_written
    assert disk_written > 0
    before_read = sc.hdfs.datanode.bytes_read
    rdd.collect()
    assert sc.hdfs.datanode.bytes_read > before_read


def test_disk_cache_results_identical_to_recompute():
    sc = tiny_heap_sc()
    data = [(i % 7, i) for i in range(1000)]
    cached = sc.parallelize(data, 2).map(lambda kv: (kv[0], kv[1] * 2)).persist(
        DISK_ONLY
    )
    first = cached.collect()
    second = cached.collect()
    assert first == second == [(k, v * 2) for k, v in data]


def test_unpersist_clears_disk_blocks():
    sc = tiny_heap_sc()
    rdd = big_data(sc).persist(DISK_ONLY)
    rdd.collect()
    assert sc.executors[0].block_manager._disk
    rdd.unpersist()
    assert not sc.executors[0].block_manager._disk


def test_memory_and_disk_prefers_memory_when_it_fits():
    sc = SparkContext(conf=SparkConf(memory_tier=0, default_parallelism=2))
    rdd = sc.parallelize(range(100), 2).persist(MEMORY_AND_DISK)
    rdd.collect()
    executor = sc.executors[0]
    assert executor.block_manager._data  # fits in memory
    assert not executor.block_manager._disk
    rdd.collect()
    assert executor.block_manager.hits == 2
    assert executor.block_manager.disk_hits == 0
