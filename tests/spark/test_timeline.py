"""Timeline export (chrome://tracing format)."""

import json

import pytest

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.timeline import (
    build_trace_events,
    export_timeline,
    timeline_summary,
)


@pytest.fixture
def busy_sc():
    sc = SparkContext(conf=SparkConf(memory_tier=2, default_parallelism=4,
                                     num_executors=2, executor_cores=4))
    sc.parallelize([(i % 5, i) for i in range(500)], 4).reduce_by_key(
        lambda a, b: a + b
    ).collect()
    return sc


def test_trace_events_cover_all_tasks(busy_sc):
    events = build_trace_events(busy_sc)
    task_events = [e for e in events if e.get("ph") == "X"]
    n_tasks = len(busy_sc.jobs[0].all_tasks())
    assert len(task_events) == n_tasks
    for event in task_events:
        assert event["dur"] > 0
        assert event["ts"] >= 0
        assert "random_reads" in event["args"]


def test_trace_has_executor_metadata(busy_sc):
    events = build_trace_events(busy_sc)
    meta = [e for e in events if e.get("ph") == "M"]
    names = {e["args"]["name"] for e in meta}
    assert names == {"executor-0", "executor-1"}


def test_lanes_do_not_overlap(busy_sc):
    events = [e for e in build_trace_events(busy_sc) if e.get("ph") == "X"]
    by_lane: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for event in events:
        by_lane.setdefault((event["pid"], event["tid"]), []).append(
            (event["ts"], event["ts"] + event["dur"])
        )
    for intervals in by_lane.values():
        intervals.sort()
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-6  # no overlap within a lane


def test_export_writes_valid_json(busy_sc, tmp_path):
    out = tmp_path / "trace.json"
    n = export_timeline(busy_sc, out)
    assert n == len(busy_sc.jobs[0].all_tasks())
    payload = json.loads(out.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert len(payload["traceEvents"]) >= n


def test_summary_metrics(busy_sc):
    summary = timeline_summary(busy_sc)
    assert summary["makespan"] > 0
    assert summary["task_time"] > 0
    assert summary["parallelism"] > 0.5
    assert 0 <= summary["dispatch_share"] < 1


def test_summary_empty_context():
    sc = SparkContext(conf=SparkConf())
    summary = timeline_summary(sc)
    assert summary == {
        "makespan": 0.0, "task_time": 0.0, "parallelism": 0.0,
        "dispatch_share": 0.0, "attempt_time": 0.0, "wasted_share": 0.0,
    }
