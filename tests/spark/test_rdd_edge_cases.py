"""RDD edge cases: empty data, degenerate partitions, odd parameters."""

import pytest


def test_empty_rdd_through_full_pipeline(sc):
    rdd = sc.parallelize([], 3)
    assert rdd.collect() == []
    assert rdd.count() == 0
    assert rdd.map(lambda x: x).filter(lambda x: True).collect() == []


def test_empty_shuffle(sc):
    out = sc.parallelize([], 2).reduce_by_key(lambda a, b: a + b).collect()
    assert out == []


def test_single_record_many_partitions(sc):
    rdd = sc.parallelize([42], 8)
    assert rdd.count() == 1
    assert rdd.glom().map(len).collect().count(1) == 1


def test_take_beyond_length(sc):
    assert sc.parallelize([1, 2], 2).take(100) == [1, 2]


def test_sample_zero_fraction(sc):
    assert sc.parallelize(range(100), 4).sample(0.0).collect() == []


def test_sample_full_fraction(sc):
    out = sc.parallelize(range(100), 4).sample(1.0).collect()
    assert len(out) >= 95  # hash threshold keeps ~all


def test_sort_single_partition(sc):
    out = sc.parallelize([(3, "c"), (1, "a"), (2, "b")], 1).sort_by_key(
        num_partitions=1
    ).collect()
    assert [k for k, _ in out] == [1, 2, 3]


def test_sort_all_equal_keys(sc):
    data = [(7, i) for i in range(20)]
    out = sc.parallelize(data, 4).sort_by_key(num_partitions=4).collect()
    assert len(out) == 20
    assert all(k == 7 for k, _ in out)


def test_union_of_three(sc):
    a = sc.parallelize([1], 1)
    b = sc.parallelize([2], 1)
    c = sc.parallelize([3], 1)
    assert a.union(b).union(c).collect() == [1, 2, 3]


def test_aggregate_by_key_zero_not_shared(sc):
    """Mutable zero values must not leak between keys (deepcopy)."""
    data = [("a", 1), ("b", 2), ("a", 3)]
    out = dict(
        sc.parallelize(data, 2)
        .aggregate_by_key([], lambda acc, v: acc + [v], lambda x, y: x + y)
        .collect()
    )
    assert sorted(out["a"]) == [1, 3]
    assert out["b"] == [2]


def test_join_with_no_common_keys(sc):
    left = sc.parallelize([("x", 1)], 1)
    right = sc.parallelize([("y", 2)], 1)
    assert left.join(right).collect() == []


def test_repartition_to_one(sc):
    out = sc.parallelize(range(50), 5).repartition(1)
    assert out.num_partitions == 1
    assert sorted(out.collect()) == list(range(50))


def test_chained_cache_and_unpersist(sc):
    base = sc.parallelize(range(100), 4).cache()
    derived = base.map(lambda x: x * 2).cache()
    assert derived.sum() == sum(2 * x for x in range(100))
    base.unpersist()
    # Derived cache still valid; base recomputes transparently.
    assert derived.sum() == sum(2 * x for x in range(100))
    assert base.count() == 100


def test_rdd_set_name_and_repr(sc):
    rdd = sc.parallelize([1], 1).set_name("my-data")
    assert rdd.name == "my-data"
    assert "my-data" in repr(rdd)


def test_map_partitions_with_generator_output(sc):
    out = sc.parallelize(range(6), 2).map_partitions(
        lambda part: (x * 10 for x in part)
    ).collect()
    assert out == [x * 10 for x in range(6)]


def test_characterize_progress_callback():
    from repro.core.characterization import characterize

    seen = []
    characterize(
        workloads=("repartition",), sizes=("tiny",), tiers=(0,),
        progress=lambda c: seen.append(c.describe()),
    )
    assert seen == ["repartition-tiny tier0 E1xC40 MBA100%"]


def test_violin_with_fixed_domain():
    from repro.analysis.violin import format_violin_row

    row = format_violin_row("x", [5.0, 6.0], domain=(0.0, 10.0))
    assert "M" in row
