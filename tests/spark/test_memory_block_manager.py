"""Unified memory manager and block manager behaviour."""

import pytest

from repro.spark.memory_manager import BlockId, UnifiedMemoryManager


def manager(unified=1000, floor=500):
    return UnifiedMemoryManager(unified, floor)


def test_validation():
    with pytest.raises(ValueError):
        UnifiedMemoryManager(0, 0)
    with pytest.raises(ValueError):
        UnifiedMemoryManager(100, 200)


def test_acquire_storage_within_capacity():
    m = manager()
    evicted = m.acquire_storage(BlockId(1, 0), 400)
    assert evicted == []
    assert m.storage_used == 400
    assert m.contains(BlockId(1, 0))
    assert m.block_size(BlockId(1, 0)) == 400


def test_storage_lru_eviction():
    m = manager()
    m.acquire_storage(BlockId(1, 0), 400)
    m.acquire_storage(BlockId(1, 1), 400)
    m.touch(BlockId(1, 0))  # make block (1,1) the LRU victim
    evicted = m.acquire_storage(BlockId(2, 0), 300)
    assert evicted == [BlockId(1, 1)]
    assert m.contains(BlockId(1, 0))
    assert not m.contains(BlockId(1, 1))
    assert m.evicted_blocks == 1


def test_block_too_large_raises():
    m = manager()
    with pytest.raises(MemoryError):
        m.acquire_storage(BlockId(1, 0), 2000)


def test_release_rdd_drops_all_its_blocks():
    m = manager()
    m.acquire_storage(BlockId(1, 0), 100)
    m.acquire_storage(BlockId(1, 1), 100)
    m.acquire_storage(BlockId(2, 0), 100)
    freed = m.release_rdd(1)
    assert freed == 200
    assert m.cached_blocks() == [BlockId(2, 0)]


def test_execution_borrows_free_space():
    m = manager()
    granted, evicted = m.acquire_execution(800)
    assert granted == 800
    assert evicted == []
    m.release_execution(800)
    assert m.execution_used == 0


def test_execution_evicts_unprotected_storage():
    m = manager(unified=1000, floor=200)
    m.acquire_storage(BlockId(1, 0), 600)
    granted, evicted = m.acquire_execution(900)
    # Storage shrinks toward the floor; execution takes what frees up.
    assert evicted == [BlockId(1, 0)]
    assert granted == 900


def test_execution_spills_on_shortfall():
    m = manager(unified=1000, floor=500)
    m.acquire_storage(BlockId(1, 0), 400)
    granted, _ = m.acquire_execution(1500)
    assert granted < 1500
    assert m.spilled_bytes == 1500 - granted


def test_storage_cannot_evict_execution():
    m = manager()
    m.acquire_execution(900)
    with pytest.raises(MemoryError):
        m.acquire_storage(BlockId(1, 0), 200)


def test_free_accounting():
    m = manager()
    m.acquire_storage(BlockId(1, 0), 300)
    m.acquire_execution(200)
    assert m.free == 500
    assert m.release_block(BlockId(1, 0)) == 300
    assert m.free == 800


# ----------------------------------------------------------- block manager (integration)
def test_block_manager_hit_after_miss(sc):
    rdd = sc.parallelize(range(200), 2).map(lambda x: x * 2).cache()
    rdd.collect()
    hits0 = sum(e.block_manager.hits for e in sc.executors)
    misses0 = sum(e.block_manager.misses for e in sc.executors)
    assert misses0 == 2 and hits0 == 0
    rdd.collect()
    hits1 = sum(e.block_manager.hits for e in sc.executors)
    assert hits1 == 2


def test_unpersist_evicts_blocks(sc):
    rdd = sc.parallelize(range(100), 2).cache()
    rdd.collect()
    assert sc.task_scheduler.total_cached_bytes() > 0
    rdd.unpersist()
    assert sc.task_scheduler.total_cached_bytes() == 0
    # Recompute still works.
    assert rdd.count() == 100


def test_cached_results_identical(sc):
    rdd = sc.parallelize(range(50), 4).map(lambda x: x + 1).cache()
    assert rdd.collect() == rdd.collect()


def test_cache_skip_for_oversized_block():
    from repro.spark.conf import SparkConf
    from repro.spark.context import SparkContext

    tiny_heap = SparkConf(memory_tier=0, default_parallelism=2, executor_memory=200_000)
    sc = SparkContext(conf=tiny_heap)
    # ~4.8 MB of strings cannot fit a 120 KB unified pool; caching is skipped
    # but results stay correct.
    rdd = sc.parallelize(["x" * 100 for _ in range(2000)], 2).cache()
    assert len(rdd.collect()) == 2000
    assert len(rdd.collect()) == 2000
    assert sum(e.block_manager.hits for e in sc.executors) == 0
