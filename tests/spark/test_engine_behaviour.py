"""Engine-level behaviour: conf, context, executors, metrics, timing."""

import pytest

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.costs import CostSpec
from repro.spark.storage_level import (
    DISK_ONLY,
    MEMORY_AND_DISK,
    MEMORY_ONLY,
    MEMORY_ONLY_SER,
    NONE,
    StorageLevel,
)


# ----------------------------------------------------------------------- conf
def test_conf_defaults_match_paper():
    conf = SparkConf()
    assert conf.num_executors == 1
    assert conf.executor_cores == 40
    assert conf.memory_tier == 0
    assert conf.total_task_slots == 40


def test_conf_validation():
    with pytest.raises(ValueError):
        SparkConf(num_executors=0)
    with pytest.raises(ValueError):
        SparkConf(memory_tier=4)
    with pytest.raises(ValueError):
        SparkConf(memory_fraction=0)


def test_conf_memory_split():
    conf = SparkConf(executor_memory=1000, memory_fraction=0.6, storage_fraction=0.5)
    assert conf.unified_memory_bytes == 600
    assert conf.storage_memory_bytes == 300


def test_conf_with_options_is_functional():
    base = SparkConf()
    derived = base.with_options(memory_tier=2, num_executors=4)
    assert base.memory_tier == 0
    assert derived.memory_tier == 2
    assert derived.num_executors == 4
    assert "tier 2" in derived.describe()


def test_shuffle_partitions_default_to_parallelism():
    assert SparkConf(default_parallelism=16).effective_shuffle_partitions == 16
    assert SparkConf(shuffle_partitions=5).effective_shuffle_partitions == 5


# -------------------------------------------------------------- storage level
def test_storage_levels():
    assert not NONE.is_cached
    assert MEMORY_ONLY.is_cached and MEMORY_ONLY.use_memory
    assert MEMORY_AND_DISK.use_disk
    assert not MEMORY_ONLY_SER.deserialized
    assert DISK_ONLY.describe() == "DISK(deser)"
    assert StorageLevel.MEMORY_ONLY is MEMORY_ONLY


# ------------------------------------------------------------------ cost spec
def test_cost_spec_validation():
    with pytest.raises(ValueError):
        CostSpec(ops_per_record=-1)


def test_cost_spec_scaled():
    spec = CostSpec(ops_per_record=10, random_reads_per_record=2)
    double = spec.scaled(2)
    assert double.ops_per_record == 20
    assert double.random_reads_per_record == 4
    assert spec.with_options(ops_per_record=99).ops_per_record == 99


# -------------------------------------------------------------------- context
def test_context_stop_blocks_further_work(sc):
    sc.stop()
    with pytest.raises(RuntimeError):
        sc.parallelize([1], 1)


def test_context_as_context_manager():
    with SparkContext(conf=SparkConf()) as sc:
        assert sc.parallelize([1, 2], 1).count() == 2
    with pytest.raises(RuntimeError):
        sc.parallelize([1], 1)


def test_text_file_reads_staged_records(sc):
    sc.hdfs.put_records("/in", [f"r{i}" for i in range(20)], record_bytes=32)
    rdd = sc.text_file("/in", 4)
    assert rdd.num_partitions == 4
    assert rdd.collect() == [f"r{i}" for i in range(20)]


def test_jobs_are_recorded_with_metrics(sc):
    sc.parallelize(range(100), 4).map(lambda x: x).count()
    assert len(sc.jobs) == 1
    job = sc.jobs[0]
    assert job.duration > 0
    assert len(job.stages) == 1
    assert job.stages[0].num_tasks == 4
    summary = job.summary()
    assert summary["num_tasks"] == 4
    assert summary["records_read"] > 0
    assert sc.total_job_time() == pytest.approx(job.duration)


def test_task_metrics_populated(sc):
    sc.parallelize([("a", 1), ("b", 2)], 2).reduce_by_key(lambda a, b: a + b).collect()
    tasks = sc.jobs[-1].all_tasks()
    assert all(m.finish_time >= m.launch_time for m in tasks)
    assert any(m.shuffle_records_written > 0 for m in tasks)
    assert any(m.shuffle_records_read > 0 for m in tasks)
    assert all(m.executor_id >= 0 for m in tasks)


def test_simulated_time_advances_monotonically(sc):
    t0 = sc.env.now
    sc.parallelize(range(10), 2).count()
    t1 = sc.env.now
    sc.parallelize(range(10), 2).count()
    t2 = sc.env.now
    assert t0 < t1 < t2


def test_executor_heap_reserved_on_device(sc):
    executor = sc.executors[0]
    assert executor.allocator.used_bytes == sc.conf.executor_memory


def test_oversubscribed_executor_memory_raises():
    from repro.memory.allocator import OutOfMemoryError
    from repro.units import gib

    # 80 executors x 1 GiB exceeds the 64 GiB DRAM pool.
    with pytest.raises(OutOfMemoryError):
        SparkContext(conf=SparkConf(num_executors=80, executor_memory=gib(1)))


# ----------------------------------------------------------------- determinism
def test_identical_runs_produce_identical_times():
    def run():
        sc = SparkContext(conf=SparkConf(memory_tier=2, default_parallelism=4))
        sc.parallelize([(i % 10, i) for i in range(500)], 4).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        return sc.env.now

    assert run() == run()


# ----------------------------------------------------------- tier sensitivity
def test_nvm_tier_slower_than_dram():
    def run(tier):
        sc = SparkContext(conf=SparkConf(memory_tier=tier, default_parallelism=4))
        sc.parallelize([(i % 20, i) for i in range(2000)], 4).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        return sc.total_job_time()

    times = {tier: run(tier) for tier in (0, 1, 2, 3)}
    assert times[0] < times[1] < times[2] < times[3]


def test_remote_fetches_counted_with_multiple_executors():
    sc = SparkContext(conf=SparkConf(num_executors=4, default_parallelism=8))
    sc.parallelize([(i % 5, i) for i in range(200)], 8).reduce_by_key(
        lambda a, b: a + b
    ).collect()
    tasks = sc.jobs[-1].all_tasks()
    assert sum(m.remote_fetches for m in tasks) > 0
    assert sum(m.local_fetches for m in tasks) > 0
