"""Dependency mapping, metrics aggregation, and scheduling priorities."""

import pytest

from repro.sim import Environment
from repro.sim.events import NORMAL, URGENT, Event
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.dependency import (
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from repro.spark.metrics import JobMetrics, StageMetrics, TaskMetrics, merge_job_metrics
from repro.spark.partitioner import HashPartitioner


# --------------------------------------------------------------- dependencies
def test_one_to_one_dependency():
    dep = OneToOneDependency(rdd=None)  # type: ignore[arg-type]
    assert dep.parents_of(5) == [5]


def test_range_dependency_maps_window():
    dep = RangeDependency(rdd=None, in_start=0, out_start=3, length=4)  # type: ignore[arg-type]
    assert dep.parents_of(3) == [0]
    assert dep.parents_of(6) == [3]
    assert dep.parents_of(2) == []
    assert dep.parents_of(7) == []


def test_shuffle_dependency_ids_unique():
    a = ShuffleDependency(rdd=None, partitioner=HashPartitioner(2))  # type: ignore[arg-type]
    b = ShuffleDependency(rdd=None, partitioner=HashPartitioner(2))  # type: ignore[arg-type]
    assert a.shuffle_id != b.shuffle_id


def test_coalesce_dependency_covers_all_parents(sc):
    rdd = sc.parallelize(range(12), 6).coalesce(2)
    dep = rdd.deps[0]
    covered = sorted(p for split in range(2) for p in dep.parents_of(split))
    assert covered == list(range(6))


# -------------------------------------------------------------------- metrics
def test_task_metrics_duration():
    m = TaskMetrics(launch_time=1.0, finish_time=3.5)
    assert m.duration == 2.5
    assert TaskMetrics().duration == 0.0
    assert TaskMetrics(bytes_read=10, bytes_written=5).total_bytes == 15


def test_stage_metrics_totals():
    stage = StageMetrics(stage_id=0, submit_time=0.0, complete_time=2.0)
    stage.tasks = [TaskMetrics(records_read=5), TaskMetrics(records_read=7)]
    assert stage.duration == 2.0
    assert stage.total("records_read") == 12


def test_job_summary_and_merge():
    job1 = JobMetrics(job_id=0, submit_time=0.0, complete_time=1.0)
    stage = StageMetrics(stage_id=0)
    stage.tasks = [TaskMetrics(records_read=10, compute_ops=100.0)]
    job1.stages = [stage]
    job2 = JobMetrics(job_id=1, submit_time=1.0, complete_time=3.0)
    stage2 = StageMetrics(stage_id=1)
    stage2.tasks = [TaskMetrics(records_read=4, compute_ops=50.0)]
    job2.stages = [stage2]

    merged = merge_job_metrics([job1, job2])
    assert merged["duration"] == pytest.approx(3.0)
    assert merged["records_read"] == 14
    assert merged["compute_ops"] == 150.0
    assert merged["num_tasks"] == 2


def test_merge_empty_jobs():
    assert merge_job_metrics([]) == {"duration": 0.0}


# ---------------------------------------------------------- event priorities
def test_urgent_events_run_before_normal():
    env = Environment()
    order = []

    normal = Event(env)
    normal.callbacks.append(lambda e: order.append("normal"))
    urgent = Event(env)
    urgent.callbacks.append(lambda e: order.append("urgent"))

    # Schedule at the same time, normal first.
    normal._ok = True
    normal._value = None
    env.schedule(normal, priority=NORMAL)
    urgent._ok = True
    urgent._value = None
    env.schedule(urgent, priority=URGENT)

    env.run()
    assert order == ["urgent", "normal"]


# ----------------------------------------------------------- context describe
def test_conf_describe_reflects_overrides():
    conf = SparkConf(num_executors=4, executor_cores=10, memory_tier=3)
    text = conf.describe()
    assert "4 executor(s)" in text
    assert "tier 3" in text


def test_sc_metrics_summary_accumulates():
    sc = SparkContext(conf=SparkConf(default_parallelism=2))
    sc.parallelize(range(10), 2).count()
    sc.parallelize(range(10), 2).count()
    summary = sc.metrics_summary()
    assert summary["num_tasks"] == 4
    assert summary["duration"] == pytest.approx(sc.total_job_time())
