"""Scheduling policies: round-robin vs least-loaded under skew."""

import pytest

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext


def skewed_sc(policy: str) -> SparkContext:
    return SparkContext(
        conf=SparkConf(
            memory_tier=0,
            num_executors=4,
            executor_cores=4,
            extra={"scheduler_policy": policy},
        )
    )


def skewed_data():
    """8 partitions where one holds ~70% of the records."""
    heavy = [("hot", i) for i in range(7000)]
    light = [(f"k{i % 50}", i) for i in range(3000)]
    return heavy + light


def run_skewed(policy: str):
    sc = skewed_sc(policy)
    # Pre-slice so partition 0 gets the heavy head (contiguous slicing).
    rdd = sc.parallelize(skewed_data(), 8)
    out = rdd.map(lambda kv: (kv[0], 1)).reduce_by_key(lambda a, b: a + b).collect()
    return sc, dict(out)


def test_both_policies_produce_identical_results():
    _, rr = run_skewed("round_robin")
    _, ll = run_skewed("least_loaded")
    assert rr == ll
    assert rr["hot"] == 7000


def test_least_loaded_balances_source_records():
    sc, _ = run_skewed("least_loaded")
    per_executor: dict[int, int] = {}
    stage0 = sc.jobs[0].stages[0]
    for m in stage0.tasks:
        per_executor[m.executor_id] = (
            per_executor.get(m.executor_id, 0) + m.records_read
        )
    # The heavy partition must not share an executor with other heavy load:
    # max executor load stays below half the total.
    assert max(per_executor.values()) < sum(per_executor.values()) * 0.55


def test_unknown_policy_rejected():
    sc = skewed_sc("fair-share")
    with pytest.raises(ValueError, match="scheduler_policy"):
        sc.parallelize([1, 2], 2).count()


def test_policies_deterministic():
    def run():
        sc, _ = run_skewed("least_loaded")
        return sc.env.now

    assert run() == run()


def test_least_loaded_no_worse_on_uniform_data():
    def run(policy):
        sc = SparkContext(
            conf=SparkConf(memory_tier=0, num_executors=4,
                           extra={"scheduler_policy": policy})
        )
        sc.parallelize(range(8000), 8).map(lambda x: x + 1).count()
        return sc.total_job_time()

    rr, ll = run("round_robin"), run("least_loaded")
    assert ll <= rr * 1.1
