"""Wide (shuffle) pair-RDD operations."""

from collections import Counter, defaultdict

import pytest

from repro.spark.partitioner import HashPartitioner


DATA = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5), ("a", 6)]


def test_reduce_by_key(sc):
    out = dict(sc.parallelize(DATA, 3).reduce_by_key(lambda a, b: a + b).collect())
    expected = defaultdict(int)
    for k, v in DATA:
        expected[k] += v
    assert out == dict(expected)


def test_group_by_key(sc):
    out = dict(sc.parallelize(DATA, 3).group_by_key().collect())
    assert sorted(out["a"]) == [1, 3, 6]
    assert sorted(out["b"]) == [2, 5]
    assert out["c"] == [4]


def test_combine_by_key_computes_means(sc):
    rdd = sc.parallelize(DATA, 3)
    sums = rdd.combine_by_key(
        create_combiner=lambda v: (v, 1),
        merge_value=lambda acc, v: (acc[0] + v, acc[1] + 1),
        merge_combiners=lambda a, b: (a[0] + b[0], a[1] + b[1]),
    )
    means = dict(sums.map_values(lambda sc_: sc_[0] / sc_[1]).collect())
    assert means["a"] == pytest.approx(10 / 3)
    assert means["b"] == pytest.approx(3.5)


def test_aggregate_by_key(sc):
    out = dict(
        sc.parallelize(DATA, 2)
        .aggregate_by_key([], lambda acc, v: acc + [v], lambda a, b: a + b)
        .collect()
    )
    assert sorted(out["a"]) == [1, 3, 6]


def test_map_values_preserves_keys(sc):
    out = sc.parallelize(DATA, 2).map_values(lambda v: v * 10).collect()
    assert out == [(k, v * 10) for k, v in DATA]


def test_flat_map_values(sc):
    out = sc.parallelize([("k", [1, 2]), ("j", [3])], 2).flat_map_values(
        lambda vs: vs
    ).collect()
    assert sorted(out) == [("j", 3), ("k", 1), ("k", 2)]


def test_sort_by_key_total_order(sc):
    import random

    rng = random.Random(3)
    data = [(rng.randint(0, 1000), i) for i in range(500)]
    out = sc.parallelize(data, 4).sort_by_key(num_partitions=4).collect()
    keys = [k for k, _ in out]
    assert keys == sorted(keys)
    assert Counter(keys) == Counter(k for k, _ in data)


def test_sort_by_key_descending(sc):
    out = sc.parallelize([(i, None) for i in (3, 1, 2)], 2).sort_by_key(
        ascending=False
    ).collect()
    assert [k for k, _ in out] == [3, 2, 1]


def test_sort_by_custom_key(sc):
    out = sc.parallelize(["ccc", "a", "bb"], 2).sort_by(len).collect()
    assert out == ["a", "bb", "ccc"]


def test_partition_by_places_keys_consistently(sc):
    partitioner = HashPartitioner(4)
    rdd = sc.parallelize(DATA, 3).partition_by(partitioner)
    assert rdd.num_partitions == 4
    parts = rdd.glom().collect()
    for idx, part in enumerate(parts):
        for key, _ in part:
            assert partitioner.partition(key) == idx


def test_partition_by_same_partitioner_is_noop(sc):
    partitioner = HashPartitioner(4)
    rdd = sc.parallelize(DATA, 3).partition_by(partitioner)
    assert rdd.partition_by(HashPartitioner(4)) is rdd


def test_repartition_preserves_records(sc):
    data = list(range(100))
    out = sc.parallelize(data, 4).repartition(7)
    assert out.num_partitions == 7
    assert sorted(out.collect()) == data
    sizes = [len(p) for p in out.glom().collect()]
    assert max(sizes) - min(sizes) <= 2  # round-robin balance


def test_join(sc):
    left = sc.parallelize([("x", 1), ("y", 2), ("x", 3)], 2)
    right = sc.parallelize([("x", "A"), ("z", "B")], 2)
    out = sorted(left.join(right).collect())
    assert out == [("x", (1, "A")), ("x", (3, "A"))]


def test_left_outer_join(sc):
    left = sc.parallelize([("x", 1), ("y", 2)], 2)
    right = sc.parallelize([("x", "A")], 2)
    out = dict(left.left_outer_join(right).collect())
    assert out == {"x": (1, "A"), "y": (2, None)}


def test_cogroup(sc):
    left = sc.parallelize([("k", 1), ("k", 2), ("j", 3)], 2)
    right = sc.parallelize([("k", "a")], 2)
    out = dict(left.cogroup(right).collect())
    assert sorted(out["k"][0]) == [1, 2]
    assert out["k"][1] == ["a"]
    assert out["j"] == ([3], [])


def test_count_by_key(sc):
    out = sc.parallelize(DATA, 3).count_by_key()
    assert out == {"a": 3, "b": 2, "c": 1}


def test_chained_shuffles(sc):
    """Multiple dependent shuffles in one lineage."""
    words = ["the cat", "the dog", "a cat"]
    counts = (
        sc.parallelize(words, 2)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .map(lambda kv: (kv[1], kv[0]))
        .group_by_key()
    )
    by_count = dict(counts.collect())
    assert sorted(by_count[2]) == ["cat", "the"]
    assert sorted(by_count[1]) == ["a", "dog"]
