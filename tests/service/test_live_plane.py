"""The live monitoring plane end to end.

Covers the ``metrics`` protocol op, the plain-HTTP ``/metrics``
listener, structured-log correlation through job dispatch, flight
recorder post-mortems on failure/cancellation, event-stream
backpressure accounting, graceful signal-driven drain, and the
``repro top`` renderer.
"""

import asyncio
import os
import signal

import pytest

from repro import api
from repro.obs import (
    format_top,
    load_flight_dump,
    parse_prometheus,
)
from repro.obs.log import reset as reset_log
from repro.options import RunOptions
from repro.service import (
    ExperimentService,
    ServiceClient,
    ServiceServer,
    serve,
)

TINY = api.config("sort", size="tiny", tier=1)


@pytest.fixture(autouse=True)
def _fresh_global_log(monkeypatch):
    monkeypatch.delenv("REPRO_LOG_PATH", raising=False)
    reset_log()
    yield
    reset_log()


def make_server(**service_kwargs) -> ServiceServer:
    service_kwargs.setdefault("heartbeat", 0)
    options = service_kwargs.pop("options", RunOptions(reuse_traces=False))
    metrics_port = service_kwargs.pop("metrics_port", None)
    return ServiceServer(
        ExperimentService(options, **service_kwargs),
        metrics_port=metrics_port,
    )


def test_metrics_op_serves_parseable_exposition_with_tier_labels():
    async def go():
        server = make_server()
        host, port = await server.start()
        async with ServiceClient(host, port, client="scraper") as client:
            await client.run(TINY)
            scrape = await client.metrics()
        await server.close()
        return scrape

    scrape = asyncio.run(go())
    assert scrape["ok"] is True
    series = parse_prometheus(scrape["prometheus"])
    assert series[("repro_service_submitted_total", "")] == 1.0
    assert series[("repro_service_completed_total", "")] == 1.0
    # Per-tier device counters, labelled by tier/socket/workload/device.
    device_series = [
        key
        for key in series
        if key[0] == "repro_device_media_reads_total" and 'tier="1"' in key[1]
    ]
    assert device_series, "expected at least one labelled per-tier series"
    assert 'workload="sort"' in device_series[0][1]
    # Latency histogram renders as a native Prometheus histogram.
    assert series[("repro_jobs_execution_time_s_count", "")] == 1.0
    # Flat summary carries streaming quantiles for the dashboard.
    assert scrape["summary"]["service.submitted"] == 1.0
    assert "service.latency_s.p50" in scrape["summary"]
    assert scrape["clients"] == {}


def test_http_metrics_listener_end_to_end():
    async def http_get(host, port, path):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.decode().partition("\r\n\r\n")
        return head, body

    async def go():
        server = make_server(metrics_port=0)
        host, port = await server.start()
        assert server.metrics_address is not None
        mhost, mport = server.metrics_address
        assert mport != port
        async with ServiceClient(host, port) as client:
            await client.run(TINY)
        scraped_head, scraped = await http_get(mhost, mport, "/metrics")
        health_head, health = await http_get(mhost, mport, "/healthz")
        missing_head, _ = await http_get(mhost, mport, "/nope")
        await server.close()
        return scraped_head, scraped, health_head, health, missing_head

    scraped_head, scraped, health_head, health, missing_head = asyncio.run(go())
    assert "200" in scraped_head.splitlines()[0]
    assert "version=0.0.4" in scraped_head
    series = parse_prometheus(scraped)
    assert series[("repro_service_completed_total", "")] == 1.0
    assert "200" in health_head.splitlines()[0] and health == "ok\n"
    assert "404" in missing_head.splitlines()[0]


def test_failed_job_dumps_reconcilable_flight_artifact(tmp_path):
    def explode(config, trace_root, obs_dir):
        raise RuntimeError("kaboom")

    async def go():
        service = ExperimentService(
            RunOptions(reuse_traces=False),
            heartbeat=0,
            execute=explode,
            flight_dir=tmp_path,
        )
        async with service:
            job = await service.submit(TINY, client="victim")
            with pytest.raises(RuntimeError, match="kaboom"):
                await job.result()
        return job

    job = asyncio.run(go())
    path = tmp_path / f"flight-job-{job.id}.json"
    assert path.exists()
    payload = load_flight_dump(path)
    assert payload["reason"] == "failed"
    assert payload["label"] == TINY.describe()
    # The dump's ring reconciles with the job's own event stream.
    assert payload["events"] == [e.to_dict() for e in job.event_log]
    assert [e["event"] for e in payload["events"]][-1] == "failed"
    # Context rides along: a metrics snapshot and the log tail.
    assert payload["metrics"]["counters"]["service.failed"] == 1.0
    tail_events = [rec["event"] for rec in payload["log_tail"]]
    assert "job.failed" in tail_events
    failed_line = next(
        rec for rec in payload["log_tail"] if rec["event"] == "job.failed"
    )
    assert failed_line["job"] == job.id
    assert failed_line["client"] == "victim"
    assert failed_line["level"] == "error"


def test_failed_job_dump_includes_its_span_when_observing(tmp_path):
    def explode(config, trace_root, obs_dir):
        raise RuntimeError("kaboom")

    async def go():
        service = ExperimentService(
            RunOptions(reuse_traces=False, observe=True),
            heartbeat=0,
            execute=explode,
            flight_dir=tmp_path,
        )
        async with service:
            job = await service.submit(TINY)
            with pytest.raises(RuntimeError):
                await job.result()
        return job

    job = asyncio.run(go())
    payload = load_flight_dump(tmp_path / f"flight-job-{job.id}.json")
    names = [span["name"] for span in payload["spans"]]
    assert TINY.describe() in names


def test_successful_job_leaves_no_flight_artifact(tmp_path):
    async def go():
        service = ExperimentService(
            RunOptions(reuse_traces=False), heartbeat=0, flight_dir=tmp_path
        )
        async with service:
            await service.run(TINY)
            return service.flight.keys

    keys = asyncio.run(go())
    assert keys == []  # done jobs discard their ring
    assert list(tmp_path.glob("flight-*.json")) == []


def test_cancelled_job_dumps_flight_artifact(tmp_path):
    import threading

    gate = threading.Event()

    def blocked(config, trace_root, obs_dir):
        from repro.core.experiment import run_experiment

        gate.wait(timeout=30)
        return run_experiment(config), "executed"

    async def go():
        service = ExperimentService(
            RunOptions(reuse_traces=False),
            heartbeat=0,
            execute=blocked,
            flight_dir=tmp_path,
        )
        async with service:
            running = await service.submit(TINY)
            await asyncio.sleep(0.05)
            queued = await service.submit(
                TINY.with_options(mba_percent=50)
            )
            assert queued.cancel()
            gate.set()
            await running.result()
        return queued

    queued = asyncio.run(go())
    payload = load_flight_dump(tmp_path / f"flight-job-{queued.id}.json")
    assert payload["reason"] == "cancelled"
    assert payload["events"][-1]["event"] == "cancelled"


def test_event_history_bounds_drop_only_progress_and_count_drops():
    import threading

    gate = threading.Event()

    def blocked(config, trace_root, obs_dir):
        from repro.core.experiment import run_experiment

        gate.wait(timeout=30)
        return run_experiment(config), "executed"

    async def go():
        service = ExperimentService(
            RunOptions(reuse_traces=False),
            heartbeat=0,
            execute=blocked,
            event_history=8,
        )
        async with service:
            job = await service.submit(TINY)
            await asyncio.sleep(0.05)
            # A slow subscriber: subscribed but never consuming.
            stream = job.events()
            first = await stream.__anext__()
            assert first.kind == "queued"
            for _ in range(30):
                job._emit("progress", phase="spam")
            gate.set()
            await job.result()
            # The stream still terminates at the terminal event even
            # though its queue overflowed mid-run.
            kinds = [first.kind]
            async for event in stream:
                kinds.append(event.kind)
            return service, job, kinds

    service, job, kinds = asyncio.run(go())
    assert len(job.event_log) <= job.history
    log_kinds = [e.kind for e in job.event_log]
    # Lifecycle events survive the trim; only progress spam is evicted.
    assert "queued" in log_kinds and "started" in log_kinds
    assert log_kinds[-1] == "done"
    assert job.events_dropped > 0
    assert kinds[-1] == "done"
    assert (
        service.metrics.counter("service.events_dropped")
        == job.events_dropped
    )
    assert service.summary()["events_dropped"] == job.events_dropped


def test_sigint_drains_gracefully_and_flushes_artifacts(tmp_path):
    """SIGINT mid-run: admissions stop at once, the in-flight job still
    completes, and the final metrics snapshot is flushed on the way out."""
    import threading

    from repro.obs import ObsConfig
    from repro.service import ServiceClosedError

    gate = threading.Event()

    def blocked(config, trace_root, obs_dir):
        from repro.core.experiment import run_experiment

        gate.wait(timeout=30)
        return run_experiment(config), "executed"

    metrics_path = tmp_path / "metrics.json"
    options = RunOptions(
        reuse_traces=False,
        observe=ObsConfig(metrics_path=str(metrics_path)),
    )

    async def go():
        service = ExperimentService(options, heartbeat=0, execute=blocked)
        ready = asyncio.get_running_loop().create_future()
        serve_task = asyncio.ensure_future(
            serve(
                service,
                ready=lambda host, port: ready.set_result((host, port)),
            )
        )
        host, port = await ready
        async with ServiceClient(host, port) as client:
            job_task = asyncio.ensure_future(client.run(TINY))
            await asyncio.sleep(0.1)  # running and holding the slot
            os.kill(os.getpid(), signal.SIGINT)
            await asyncio.sleep(0.05)
            # Draining: new admissions are rejected immediately...
            with pytest.raises(ServiceClosedError):
                await service.submit(TINY.with_options(mba_percent=50))
            # ...but the in-flight job runs to completion.
            gate.set()
            result = await job_task
        await asyncio.wait_for(serve_task, timeout=30)
        return service, result

    service, result = asyncio.run(go())
    assert service.closed
    assert result.execution_time > 0
    # The final snapshot was flushed on the way out.
    from repro.obs import load_metrics_json

    registry = load_metrics_json(metrics_path)
    assert registry.counter("service.completed") == 1.0


def test_request_shutdown_stops_serve_loop():
    async def go():
        server = make_server()
        await server.start()
        serve_task = asyncio.ensure_future(server.serve_until_shutdown())
        await asyncio.sleep(0.05)
        server.request_shutdown()
        await asyncio.wait_for(serve_task, timeout=10)
        return server.service

    service = asyncio.run(go())
    assert service.closed


def test_format_top_renders_the_scrape():
    status = {"queued": 0, "running": 0}
    summary = {
        "service.queue_depth": 2.0,
        "service.running": 1.0,
        "service.submitted": 10.0,
        "service.completed": 6.0,
        "service.failed": 1.0,
        "service.cancelled": 0.0,
        "service.coalesce_hits": 3.0,
        "service.cache_hits": 2.0,
        "service.rejected": 1.0,
        "service.events_dropped": 4.0,
        "jobs.execution_time_s.p50": 0.5,
        "jobs.execution_time_s.p90": 0.9,
        "jobs.execution_time_s.p99": 1.2,
    }
    frame = format_top(status, summary, clients={"cli": 2, "nb": 1})
    assert "repro top" in frame
    assert "queued=2" in frame and "running=1" in frame
    assert "done=6" in frame and "failed=1" in frame
    assert "coalesced=3" in frame and "(30.0%)" in frame
    assert "rejected=1" in frame
    assert "dropped=4" in frame
    assert "p50=0.5000s" in frame and "p99=1.2000s" in frame
    assert "cli" in frame and "nb" in frame


def test_structured_log_correlates_job_lifecycle(tmp_path):
    from repro.obs.log import configure, get_log
    from repro.obs import read_log

    log_path = tmp_path / "service.jsonl"
    configure(log_path)

    async def go():
        service = ExperimentService(
            RunOptions(reuse_traces=False), heartbeat=0
        )
        async with service:
            job = await service.submit(TINY, client="nb")
            await job.result()
        return job

    job = asyncio.run(go())
    get_log().close()
    configure(None)  # drop the env-exported path for later tests
    records = read_log(log_path)
    job_lines = [r for r in records if r.get("job") == job.id]
    kinds = [r["event"] for r in job_lines]
    assert "job.queued" in kinds
    assert "job.started" in kinds
    assert "job.done" in kinds
    assert all(r["component"] == "service" for r in job_lines)
    assert all(r["client"] == "nb" for r in job_lines)
    shutdown_lines = [r for r in records if r["event"] == "service.shutdown"]
    assert shutdown_lines and shutdown_lines[0]["completed"] == 1.0
