"""Semantics of the async experiment service.

No pytest-asyncio in the toolchain, so each test drives its own event
loop with ``asyncio.run``.  Scheduling-order tests use a *gated* stub
executor — the single worker thread blocks on a ``threading.Event``, so
tests can fill the queue, cancel, drain, then release and observe the
exact dispatch order.
"""

import asyncio
import threading

import pytest

from repro import api
from repro.options import RunOptions
from repro.service import (
    ClientLimitError,
    ExperimentService,
    JobCancelledError,
    QueueFullError,
    ServiceClosedError,
)

TINY = api.config("sort", size="tiny", tier=1)


class GatedExecute:
    """Stub worker entry point: blocks until the gate opens, then
    returns a deterministic value derived from the config."""

    def __init__(self, open_immediately: bool = False) -> None:
        self.gate = threading.Event()
        if open_immediately:
            self.gate.set()
        self.calls: list[str] = []
        self.lock = threading.Lock()

    def __call__(self, config, trace_root, obs_dir):
        with self.lock:
            self.calls.append(config.describe())
        assert self.gate.wait(timeout=30), "gate never opened"
        return f"value:{config.describe()}", "executed"


def gated_service(gate: GatedExecute, **kwargs) -> ExperimentService:
    kwargs.setdefault("heartbeat", 0)
    return ExperimentService(
        RunOptions(reuse_traces=False), execute=gate, **kwargs
    )


async def settle() -> None:
    """Let pending callbacks (dispatch, _finish) run."""
    for _ in range(20):
        await asyncio.sleep(0.01)


# ---------------------------------------------------------------- identity
def test_results_bit_identical_to_api_run(tmp_path):
    direct = api.run(TINY)

    async def go():
        options = RunOptions(cache_dir=str(tmp_path / "cache"))
        async with ExperimentService(options, heartbeat=0) as service:
            return await service.run(TINY)

    via_service = asyncio.run(go())
    assert via_service.execution_time == direct.execution_time
    assert via_service.records_processed == direct.records_processed
    assert via_service.nvm_reads == direct.nvm_reads
    assert via_service.nvm_writes == direct.nvm_writes


def test_capture_then_replay_scheduling_is_value_identical(tmp_path):
    configs = [TINY.with_options(tier=t) for t in (0, 1, 2)]
    direct = [api.run(c) for c in configs]

    async def go():
        options = RunOptions(trace_dir=str(tmp_path / "traces"))
        async with ExperimentService(options, heartbeat=0) as service:
            jobs = [await service.submit(c) for c in configs]
            results = [await job.result() for job in jobs]
            return results, sorted(job.status for job in jobs)

    results, statuses = asyncio.run(go())
    assert statuses == ["captured", "replayed", "replayed"]
    assert [r.execution_time for r in results] == [
        r.execution_time for r in direct
    ]


# ---------------------------------------------------------------- coalescing
def test_coalescing_returns_identical_result_object():
    gate = GatedExecute()

    async def go():
        async with gated_service(gate) as service:
            first = await service.submit(TINY, client="a")
            await settle()  # first starts running (and blocks on the gate)
            second = await service.submit(TINY, client="b")
            third = await service.submit(TINY, client="c")
            assert second.state == "coalesced"
            assert third.state == "coalesced"
            gate.gate.set()
            results = [await j.result() for j in (first, second, third)]
            return service, (first, second, third), results

    service, jobs, results = asyncio.run(go())
    # one execution, one result *object*, shared by every caller
    assert gate.calls == [TINY.describe()]
    assert results[1] is results[0]
    assert results[2] is results[0]
    assert [j.status for j in jobs] == ["executed", "coalesced", "coalesced"]
    assert service.metrics.counter("service.coalesce_hits") == 2
    assert service.metrics.counter("service.completed") == 3


def test_cached_submission_resolves_instantly(tmp_path):
    async def go():
        options = RunOptions(cache_dir=str(tmp_path), reuse_traces=False)
        async with ExperimentService(options, heartbeat=0) as service:
            first = await service.submit(TINY)
            await first.result()
            second = await service.submit(TINY)
            result = await second.result()
            return service, second, result

    service, second, result = asyncio.run(go())
    assert second.status == "cached"
    assert result.execution_time == api.run(TINY).execution_time
    assert service.metrics.counter("service.cache_hits") == 1


# ---------------------------------------------------------------- backpressure
def test_queue_full_raises_explicitly():
    gate = GatedExecute()
    configs = [TINY.with_options(tier=t) for t in range(4)]

    async def go():
        async with gated_service(gate, max_queue=2) as service:
            await service.submit(configs[0], client="a")
            await settle()  # running now, not queued
            await service.submit(configs[1], client="b")
            await service.submit(configs[2], client="c")
            with pytest.raises(QueueFullError):
                await service.submit(configs[3], client="d")
            gate.gate.set()
            return service

    service = asyncio.run(go())
    assert service.metrics.counter("service.rejected.queue_full") == 1


def test_client_inflight_cap_raises():
    gate = GatedExecute()
    configs = [TINY.with_options(tier=t) for t in range(3)]

    async def go():
        async with gated_service(gate, max_inflight_per_client=2) as service:
            await service.submit(configs[0], client="greedy")
            await service.submit(configs[1], client="greedy")
            with pytest.raises(ClientLimitError):
                await service.submit(configs[2], client="greedy")
            # other clients are unaffected by one client's cap
            other = await service.submit(configs[2], client="polite")
            gate.gate.set()
            await other.result()
            return service

    service = asyncio.run(go())
    assert service.metrics.counter("service.rejected.client_limit") == 1


# ---------------------------------------------------------------- scheduling
def test_priority_then_fair_share_then_fifo_order():
    gate = GatedExecute()
    # distinct from TINY (which blocks the slot) and from each other
    mk = [TINY.with_options(mba_percent=p) for p in (10, 25, 50, 75)]

    async def go():
        async with gated_service(gate) as service:
            blocker = await service.submit(TINY, client="z")
            await settle()  # occupies the single slot
            b = await service.submit(mk[0], client="one", priority=0)
            c = await service.submit(mk[1], client="two", priority=5)
            d = await service.submit(mk[2], client="one", priority=5)
            e = await service.submit(mk[3], client="three", priority=0)
            gate.gate.set()
            for job in (blocker, b, c, d, e):
                await job.result()

    asyncio.run(go())
    # priority first (c, d by seq); then fair share: client three has
    # never been served, client one just was — e before b.
    assert gate.calls == [
        TINY.describe(),
        mk[1].describe(),
        mk[2].describe(),
        mk[3].describe(),
        mk[0].describe(),
    ]


def test_cancellation_mid_queue_never_leaks_a_slot():
    gate = GatedExecute()
    mk = [TINY.with_options(tier=t) for t in range(4)]

    async def go():
        async with gated_service(gate) as service:
            running = await service.submit(mk[0], client="a")
            await settle()
            doomed = await service.submit(mk[1], client="b")
            survivor = await service.submit(mk[2], client="c")
            assert doomed.cancel() is True
            assert doomed.cancel() is False  # idempotent
            gate.gate.set()
            await running.result()
            await survivor.result()
            with pytest.raises(JobCancelledError):
                await doomed.result()
            # the pool still has its full capacity: new work runs
            late = await service.submit(mk[3], client="d")
            await late.result()
            summary = service.summary()
            return service, summary

    service, summary = asyncio.run(go())
    assert mk[1].describe() not in gate.calls  # never executed
    assert summary["completed"] == 3
    assert summary["cancelled"] == 1
    assert summary["running"] == 0
    assert summary["active"] == 0
    assert service.metrics.counter("service.cancelled") == 1


def test_cancelling_queued_primary_promotes_coalesced_follower():
    gate = GatedExecute()
    other = TINY.with_options(tier=2)

    async def go():
        async with gated_service(gate) as service:
            blocker = await service.submit(TINY, client="z")
            await settle()
            primary = await service.submit(other, client="a")
            follower = await service.submit(other, client="b")
            assert follower.state == "coalesced"
            assert primary.cancel() is True
            assert follower.state == "queued"  # promoted, still scheduled
            gate.gate.set()
            await blocker.result()
            result = await follower.result()
            with pytest.raises(JobCancelledError):
                await primary.result()
            return result

    result = asyncio.run(go())
    assert result == f"value:{other.describe()}"
    assert gate.calls.count(other.describe()) == 1


def test_running_jobs_are_not_cancellable():
    gate = GatedExecute()

    async def go():
        async with gated_service(gate) as service:
            job = await service.submit(TINY)
            await settle()
            assert job.state == "running"
            assert job.cancel() is False
            gate.gate.set()
            return await job.result()

    assert asyncio.run(go()) == f"value:{TINY.describe()}"


# ---------------------------------------------------------------- drain
def test_drain_completes_inflight_and_rejects_new():
    gate = GatedExecute()
    other = TINY.with_options(tier=3)

    async def go():
        service = gated_service(gate)
        async with service:
            running = await service.submit(TINY, client="a")
            queued = await service.submit(other, client="b")
            await settle()
            drainer = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.05)
            assert not drainer.done()  # still waiting on admitted work
            with pytest.raises(ServiceClosedError):
                await service.submit(TINY.with_options(tier=2))
            gate.gate.set()
            await drainer
            assert running.done and queued.done
            return service

    service = asyncio.run(go())
    assert service.summary()["completed"] == 2
    assert service.summary()["active"] == 0
    assert service.metrics.counter("service.rejected.closed") == 1


def test_shutdown_cancel_queued_cancels_only_unstarted_work():
    gate = GatedExecute()
    other = TINY.with_options(tier=2)

    async def go():
        service = gated_service(gate)
        await service.start()
        running = await service.submit(TINY)
        await settle()
        queued = await service.submit(other)
        gate.gate.set()
        await service.shutdown(cancel_queued=True)
        assert running.status == "executed"
        assert queued.state == "cancelled"
        return service

    service = asyncio.run(go())
    assert service.summary()["cancelled"] == 1


# ---------------------------------------------------------------- events
def test_event_stream_replays_history_for_late_subscribers():
    async def go():
        async with gated_service(GatedExecute(True)) as service:
            job = await service.submit(TINY)
            await job.result()
            kinds = [event.kind async for event in job.events()]
            wire = [event.to_dict() for event in job.event_log]
            return kinds, wire

    kinds, wire = asyncio.run(go())
    assert kinds == ["queued", "started", "done"]
    assert [w["event"] for w in wire] == kinds
    assert all(w["job"] == wire[0]["job"] for w in wire)
    assert wire[-1]["status"] == "executed"
    assert wire[-1]["latency_s"] >= 0


def test_failed_job_raises_and_emits_failed_event():
    def explode(config, trace_root, obs_dir):
        raise ValueError("boom")

    async def go():
        options = RunOptions(reuse_traces=False)
        async with ExperimentService(
            options, heartbeat=0, execute=explode
        ) as service:
            job = await service.submit(TINY)
            with pytest.raises(ValueError, match="boom"):
                await job.result()
            return service, [e.kind for e in job.event_log], job

    service, kinds, job = asyncio.run(go())
    assert kinds == ["queued", "started", "failed"]
    assert job.error == "ValueError: boom"
    assert service.metrics.counter("service.failed") == 1
