"""TCP round-trips through ServiceServer/ServiceClient.

Each test binds an ephemeral port, talks the JSON-lines protocol end to
end, and shuts the service down cleanly — the same path ``repro serve``
and ``repro submit`` use.
"""

import asyncio
import json

import pytest

from repro import api
from repro.options import RunOptions
from repro.service import (
    PROTOCOL_VERSION,
    ExperimentService,
    QueueFullError,
    RemoteJobFailed,
    ServiceClient,
    ServiceServer,
)

TINY = api.config("sort", size="tiny", tier=1)


def make_server(**service_kwargs) -> ServiceServer:
    service_kwargs.setdefault("heartbeat", 0)
    options = service_kwargs.pop("options", RunOptions(reuse_traces=False))
    return ServiceServer(ExperimentService(options, **service_kwargs))


def test_submit_round_trip_matches_local_run(tmp_path):
    direct = api.run(TINY)

    async def go():
        server = make_server(options=RunOptions(cache_dir=str(tmp_path)))
        host, port = await server.start()
        events = []
        async with ServiceClient(host, port, client="t") as client:
            hello = await client.hello()
            result = await client.run(TINY, on_event=events.append)
            cached = await client.run(TINY)
            status = await client.status()
        await server.close()
        return hello, events, result, cached, status

    hello, events, result, cached, status = asyncio.run(go())
    assert hello["protocol"] == PROTOCOL_VERSION
    assert [e["event"] for e in events] == ["queued", "started", "done"]
    # the wire result deserializes to the same simulated values
    assert result.execution_time == direct.execution_time
    assert result.records_processed == direct.records_processed
    assert cached.execution_time == direct.execution_time
    assert status["summary"]["completed"] == 2
    assert status["summary"]["cache_hits"] == 1
    assert status["metrics"]["counters"]["service.completed"] == 2


def test_concurrent_clients_coalesce_over_the_wire():
    config = TINY.with_options(tier=2)

    async def go():
        server = make_server()
        host, port = await server.start()

        async def one(name):
            async with ServiceClient(host, port, client=name) as client:
                return await client.run(config)

        results = await asyncio.gather(one("a"), one("b"), one("c"))
        async with ServiceClient(host, port) as client:
            status = await client.status()
        await server.close()
        return results, status

    results, status = asyncio.run(go())
    assert len({r.execution_time for r in results}) == 1
    assert status["summary"]["coalesce_hits"] >= 1
    assert (
        status["summary"]["coalesce_hits"]
        + status["metrics"]["counters"].get("service.status.captured", 0)
        + status["metrics"]["counters"].get("service.status.executed", 0)
        == 3
    )


def test_rejections_travel_as_typed_errors():
    """A queue-full rejection must surface client-side as the same
    exception type a local submitter gets, not a broken pipe."""
    import threading

    gate = threading.Event()

    def blocked(config, trace_root, obs_dir):
        from repro.core.experiment import run_experiment

        gate.wait(timeout=30)
        return run_experiment(config), "executed"

    async def go():
        server = make_server(execute=blocked, max_queue=1)
        host, port = await server.start()
        configs = [TINY.with_options(mba_percent=p) for p in (10, 50, 100)]
        async with ServiceClient(host, port, client="a") as first:
            task = asyncio.ensure_future(first.run(configs[0]))
            await asyncio.sleep(0.1)  # running and holding the slot
            async with ServiceClient(host, port, client="b") as second:
                queued = asyncio.ensure_future(second.run(configs[1]))
                await asyncio.sleep(0.1)
                async with ServiceClient(host, port, client="c") as third:
                    with pytest.raises(QueueFullError):
                        await third.run(configs[2])
                gate.set()
                await asyncio.gather(task, queued)
        await server.close()

    asyncio.run(go())


def test_remote_failure_raises_remote_job_failed():
    def explode(config, trace_root, obs_dir):
        raise RuntimeError("kaboom")

    async def go():
        server = make_server(execute=explode)
        host, port = await server.start()
        async with ServiceClient(host, port) as client:
            with pytest.raises(RemoteJobFailed, match="kaboom"):
                await client.run(TINY)
        await server.close()

    asyncio.run(go())


def test_malformed_requests_get_bad_request_not_disconnect():
    async def go():
        server = make_server()
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        responses = []
        for raw in (b"not json\n", b'{"op": "nope"}\n', b'{"op": "hello"}\n'):
            writer.write(raw)
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
        writer.close()
        await writer.wait_closed()
        await server.close()
        return responses

    bad_json, bad_op, hello = asyncio.run(go())
    assert bad_json == {"ok": False, "error": bad_json["error"],
                        "kind": "bad_request"}
    assert bad_op["kind"] == "bad_request" and "nope" in bad_op["error"]
    assert hello["ok"] is True  # the connection survived both errors


def test_shutdown_op_drains_and_stops_the_server():
    async def go():
        server = make_server()
        host, port = await server.start()
        serve_task = asyncio.ensure_future(server.serve_until_shutdown())
        async with ServiceClient(host, port) as client:
            await client.run(TINY)
            reply = await client.shutdown_server()
        await asyncio.wait_for(serve_task, timeout=10)
        return reply, server.service

    reply, service = asyncio.run(go())
    assert reply == {"ok": True, "drained": True, "stopping": True}
    assert service.closed
    assert service.summary()["active"] == 0
