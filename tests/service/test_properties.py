"""Property: N concurrent clients ≡ serial submission.

Whatever interleaving of clients, priorities and duplicate configs the
scheduler sees, every submitter must get exactly the result its config
computes — coalescing, fair-share reordering and capture/replay may
change *when* and *how often* work runs, never *what* a caller receives.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.options import RunOptions
from repro.service import ExperimentService

#: Small pool of distinct configs; duplicates across clients exercise
#: coalescing under every generated interleaving.
CONFIG_POOL = [
    api.config("sort", size="tiny", tier=t, mba_percent=m)
    for t in (0, 2)
    for m in (50, 100)
]


def value_of(config) -> str:
    return f"value:{config.describe()}"


def stub_execute(config, trace_root, obs_dir):
    return value_of(config), "executed"


submissions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # client index
        st.integers(min_value=0, max_value=len(CONFIG_POOL) - 1),
        st.integers(min_value=0, max_value=5),  # priority
    ),
    min_size=1,
    max_size=10,
)


def fresh_service() -> ExperimentService:
    return ExperimentService(
        RunOptions(reuse_traces=False),
        heartbeat=0,
        max_queue=64,
        max_inflight_per_client=64,
        execute=stub_execute,
    )


@settings(max_examples=30, deadline=None)
@given(subs=submissions)
def test_concurrent_clients_equivalent_to_serial(subs):
    async def concurrent():
        async with fresh_service() as service:
            return await asyncio.gather(*(
                service.run(
                    CONFIG_POOL[c], client=f"client-{k}", priority=p
                )
                for k, c, p in subs
            ))

    async def serial():
        async with fresh_service() as service:
            results = []
            for k, c, p in subs:
                results.append(await service.run(
                    CONFIG_POOL[c], client=f"client-{k}", priority=p
                ))
            return results

    expected = [value_of(CONFIG_POOL[c]) for _, c, _ in subs]
    assert asyncio.run(concurrent()) == expected
    assert asyncio.run(serial()) == expected


@settings(max_examples=20, deadline=None)
@given(subs=submissions)
def test_every_submission_is_accounted_for(subs):
    """completed == submitted after the dust settles; at most one
    execution per distinct config is *required* only when submissions
    overlap, but executions never exceed submissions."""

    async def go():
        async with fresh_service() as service:
            jobs = [
                await service.submit(
                    CONFIG_POOL[c], client=f"client-{k}", priority=p
                )
                for k, c, p in subs
            ]
            for job in jobs:
                await job.result()
            return service, jobs

    service, jobs = asyncio.run(go())
    summary = service.summary()
    assert summary["submitted"] == len(subs)
    assert summary["completed"] == len(subs)
    assert summary["failed"] == 0
    assert summary["active"] == 0
    executed = sum(job.status == "executed" for job in jobs)
    coalesced = sum(job.status == "coalesced" for job in jobs)
    assert executed + coalesced == len(jobs)
    assert executed >= len({c for _, c, _ in subs}) if coalesced else True
    assert summary["coalesce_hits"] == coalesced
