"""Service-side shared-memory transport: pooled replays attach the
parent's published segments, and a drained service leaks none."""

import asyncio
from pathlib import Path

from repro import api
from repro.analysis.resultstore import result_to_dict
from repro.core.experiment import run_experiment
from repro.options import RunOptions
from repro.service import ExperimentService
from repro.trace.shm import _SEGMENT_PREFIX

DEV_SHM = Path("/dev/shm")


def our_segments() -> set[str]:
    if not DEV_SHM.exists():  # pragma: no cover - non-tmpfs platforms
        return set()
    return {p.name for p in DEV_SHM.iterdir() if _SEGMENT_PREFIX in p.name}


def test_pooled_service_publishes_and_drains_cleanly(tmp_path):
    """Two behaviour classes × two tiers through a 2-process pool: the
    replay jobs resolve through published segments, results stay
    bit-identical to direct runs, and shutdown unlinks every segment."""
    points = [
        api.config(workload, size="tiny", tier=tier)
        for workload in ("sort", "repartition")
        for tier in (0, 2)
    ]
    before = our_segments()

    async def main():
        options = RunOptions(workers=2, trace_dir=tmp_path)
        async with ExperimentService(options, heartbeat=0) as service:
            jobs = [await service.submit(c) for c in points]
            results = [await job.result() for job in jobs]
            published = service.metrics.counter("service.shm_published")
            statuses = [job.status for job in jobs]
        return results, statuses, published

    results, statuses, published = asyncio.run(main())
    # First job per class captures; the second replays its artifact.
    assert statuses.count("captured") == 2
    assert statuses.count("replayed") == 2
    assert published >= 2  # each class published once for its replay
    for point, result in zip(points, results):
        assert result_to_dict(result) == result_to_dict(run_experiment(point))
    assert our_segments() == before  # drained: zero leaked segments


def test_shm_bound_evicts_but_stays_correct(tmp_path):
    """A service bounded to one byte of shared memory evicts every
    previously published class, yet every replay stays bit-identical —
    evicted classes simply fall back to the on-disk artifact."""
    points = [
        api.config(workload, size="tiny", tier=tier)
        for workload in ("sort", "repartition")
        for tier in (0, 2)
    ]
    before = our_segments()

    async def main():
        options = RunOptions(workers=2, trace_dir=tmp_path)
        async with ExperimentService(
            options, heartbeat=0, max_shm_bytes=1
        ) as service:
            results = []
            for point in points:  # sequential: force capture-then-replay
                results.append(await service.run(point))
            # The bound keeps at most the most recently dispatched
            # segment alive (it is never evicted, whatever its size).
            segments = (
                0 if service._shm_cache is None else len(service._shm_cache)
            )
        return results, segments

    results, segments = asyncio.run(main())
    assert segments <= 1
    for point, result in zip(points, results):
        assert result_to_dict(result) == result_to_dict(run_experiment(point))
    assert our_segments() == before


def test_serial_service_skips_publication(tmp_path):
    """A serial (thread-pool) service shares a process with its worker,
    so it must not pay the copy into shared memory at all."""
    point = api.config("sort", size="tiny", tier=1)

    async def main():
        options = RunOptions(workers=None, trace_dir=tmp_path)
        async with ExperimentService(options, heartbeat=0) as service:
            await service.run(point)
            await service.run(point.with_options(tier=3))
            return service.metrics.counter("service.shm_published")

    assert asyncio.run(main()) == 0
