"""HDFS model: blocks, namenode, datanode, client facade."""

import pytest

from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, split_into_blocks
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HdfsClient
from repro.hdfs.namenode import FileExistsOnHdfs, FileNotFoundOnHdfs, NameNode
from repro.units import MB


# --------------------------------------------------------------------- blocks
def test_split_exact_multiple():
    blocks = split_into_blocks("/f", 256 * MB, block_size=128 * MB)
    assert [b.nbytes for b in blocks] == [128 * MB, 128 * MB]
    assert [b.index for b in blocks] == [0, 1]


def test_split_with_remainder():
    blocks = split_into_blocks("/f", 200 * MB, block_size=128 * MB)
    assert [b.nbytes for b in blocks] == [128 * MB, 72 * MB]


def test_split_empty_file_has_one_block():
    blocks = split_into_blocks("/f", 0)
    assert len(blocks) == 1
    assert blocks[0].nbytes == 0


def test_split_validation():
    with pytest.raises(ValueError):
        split_into_blocks("/f", -1)
    with pytest.raises(ValueError):
        split_into_blocks("/f", 10, block_size=0)


# ------------------------------------------------------------------- namenode
def test_namenode_create_and_lookup():
    nn = NameNode()
    nn.create("/data/in", 300 * MB)
    assert nn.exists("/data/in")
    assert nn.file_size("/data/in") == 300 * MB
    assert len(nn.blocks("/data/in")) == 3


def test_namenode_write_once():
    nn = NameNode()
    nn.create("/f", 10)
    with pytest.raises(FileExistsOnHdfs):
        nn.create("/f", 10)


def test_namenode_missing_path():
    nn = NameNode()
    with pytest.raises(FileNotFoundOnHdfs):
        nn.blocks("/nope")
    with pytest.raises(FileNotFoundOnHdfs):
        nn.delete("/nope")


def test_namenode_block_ids_globally_unique():
    nn = NameNode(block_size=MB)
    nn.create("/a", 3 * MB)
    nn.create("/b", 2 * MB)
    ids = [b.block_id for b in nn.blocks("/a") + nn.blocks("/b")]
    assert len(ids) == len(set(ids))


def test_namenode_listdir():
    nn = NameNode()
    nn.create("/x/1", 1)
    nn.create("/x/2", 1)
    nn.create("/y/1", 1)
    assert nn.listdir("/x") == ["/x/1", "/x/2"]
    nn.delete("/x/1")
    assert nn.listdir("/x") == ["/x/2"]


# ------------------------------------------------------------------- datanode
def test_datanode_transfer_time(env):
    dn = DataNode(env, bandwidth=100e6, request_overhead=0.0, max_streams=4)

    def proc(env):
        elapsed = yield from dn.read(100_000_000)
        return elapsed

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(1.0)
    assert dn.bytes_read == 100_000_000


def test_datanode_streams_share_bandwidth(env):
    dn = DataNode(env, bandwidth=100e6, request_overhead=0.0, max_streams=4)
    done = []

    def proc(env):
        yield from dn.write(50_000_000)
        done.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    # Second stream admitted while first is active → sees half rate.
    assert max(done) == pytest.approx(1.0)
    assert dn.bytes_written == 100_000_000


def test_datanode_validation(env):
    with pytest.raises(ValueError):
        DataNode(env, bandwidth=0)
    dn = DataNode(env)
    with pytest.raises(ValueError):
        dn.transfer(-1, write=False).send(None)


# --------------------------------------------------------------------- client
def test_client_put_and_status(env):
    hdfs = HdfsClient(env)
    records = [f"row{i}" for i in range(100)]
    status = hdfs.put_records("/in", records, record_bytes=100.0)
    assert status.nbytes == 10_000
    assert hdfs.exists("/in")
    assert hdfs.read_records("/in") == records
    assert hdfs.record_bytes("/in") == 100.0


def test_client_delete(env):
    hdfs = HdfsClient(env)
    hdfs.put_records("/in", ["a"], record_bytes=10)
    hdfs.delete("/in")
    assert not hdfs.exists("/in")
    with pytest.raises(FileNotFoundError):
        hdfs.read_records("/in")


def test_client_timed_write_registers_file(env):
    hdfs = HdfsClient(env)

    def proc(env):
        elapsed = yield from hdfs.write_records("/out", ["x"] * 50, record_bytes=64)
        return elapsed

    p = env.process(proc(env))
    env.run()
    assert p.value > 0
    assert hdfs.exists("/out")
    assert hdfs.status("/out").nbytes == 50 * 64


def test_client_replication_multiplies_write_volume(env):
    hdfs = HdfsClient(env, replication=3)

    def proc(env):
        yield from hdfs.stream_write(1000)

    env.process(proc(env))
    env.run()
    assert hdfs.datanode.bytes_written == 3000


def test_client_validation(env):
    with pytest.raises(ValueError):
        HdfsClient(env, replication=0)
    hdfs = HdfsClient(env)
    with pytest.raises(ValueError):
        hdfs.put_records("/bad", ["a"], record_bytes=0)
