"""Smoke tests: the fast example scripts run end to end.

The slower sweeps (tier_exploration over large sizes, executor_tuning's
full grid, capacity_planning) are exercised through their underlying
APIs elsewhere; here the quick examples run as real subprocesses so the
documented entry points cannot rot.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Tier 0 (local DRAM)" in out
    assert "NVDIMM media reads" in out
    assert "slower" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "kmeans-custom" in out
    assert out.count("yes") >= 4  # verified on all four tiers


def test_performance_prediction():
    out = run_example("performance_prediction.py")
    assert "r(latency)" in out
    assert "R^2" in out
    assert "predicted" in out


def test_campaign_runner():
    out = run_example("campaign_runner.py")
    assert "value-identical to serial: True" in out
    assert "0 executed" in out
    assert "failure isolation" in out


def test_experiment_service():
    out = run_example("experiment_service.py")
    assert "coalesce_hits=4" in out
    assert "duplicate submissions share one result object: True" in out
    assert "bit-identical to api.run: True" in out
    assert "resubmitted point resolved from cache: True" in out
    assert "drained: every admitted job resolved" in out


def test_live_monitoring():
    out = run_example("live_monitoring.py")
    assert "all well-formed" in out
    assert "per-tier device series for tiers: 0, 1, 2" in out
    assert "repro top" in out
    assert "structured log:" in out and "correlating 3 jobs" in out
    assert "post-mortem holds ['queued', 'started', 'failed']" in out


def test_fault_tolerance():
    out = run_example("fault_tolerance.py")
    assert "executors_lost" in out
    assert "speculative_wins" in out
    assert "identical result" in out


def test_observability(tmp_path):
    import json
    import os

    # Run from tmp_path: the example writes its artifacts into cwd.
    # PYTHONPATH must be absolute since cwd is no longer the repo root.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(EXAMPLES.parent / "src")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "observability.py")],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=tmp_path,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    assert "bit-identical to the unobserved run" in out
    assert "stage timeline" in out
    assert "scheduler.attempts_launched" in out

    trace = json.loads((tmp_path / "obs-trace.json").read_text())
    assert trace["otherData"]["schema"] == "repro.obs.trace"
    spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
    assert {e["cat"] for e in spans} >= {"experiment", "job", "stage", "task"}
    # Perfetto-loadable nesting: every parent a span references exists
    # and encloses its child's interval.
    by_id = {e["args"]["span_id"]: e for e in spans}
    for event in spans:
        parent_id = event["args"]["parent_id"]
        if parent_id is not None:
            parent = by_id[parent_id]
            assert parent["ts"] <= event["ts"]
            assert event["ts"] + event["dur"] <= (
                parent["ts"] + parent["dur"] + 1e-6
            )
    assert (tmp_path / "obs-metrics.json").exists()


def test_examples_all_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text(encoding="utf-8")
        assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), script
        assert '__main__' in text, script
