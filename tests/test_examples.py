"""Smoke tests: the fast example scripts run end to end.

The slower sweeps (tier_exploration over large sizes, executor_tuning's
full grid, capacity_planning) are exercised through their underlying
APIs elsewhere; here the quick examples run as real subprocesses so the
documented entry points cannot rot.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Tier 0 (local DRAM)" in out
    assert "NVDIMM media reads" in out
    assert "slower" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "kmeans-custom" in out
    assert out.count("yes") >= 4  # verified on all four tiers


def test_performance_prediction():
    out = run_example("performance_prediction.py")
    assert "r(latency)" in out
    assert "R^2" in out
    assert "predicted" in out


def test_campaign_runner():
    out = run_example("campaign_runner.py")
    assert "value-identical to serial: True" in out
    assert "0 executed" in out
    assert "failure isolation" in out


def test_fault_tolerance():
    out = run_example("fault_tolerance.py")
    assert "executors_lost" in out
    assert "speculative_wins" in out
    assert "identical result" in out


def test_examples_all_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text(encoding="utf-8")
        assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), script
        assert '__main__' in text, script
