"""End-to-end integration: sweep → persist → reload → re-derive → report.

Exercises the full downstream-user pipeline across module boundaries:
experiments run, results persist as JSON lines, a fresh process-level
view reloads them and re-derives the paper's summary metrics, and the
markdown report renders from the same data.
"""

import pytest

from repro.analysis.reporting import characterization_report
from repro.analysis.resultstore import ResultStore
from repro.core.characterization import characterize, tier_gap_summary
from repro.core.correlation import pearson


@pytest.fixture(scope="module")
def sweep():
    return characterize(workloads=("repartition", "lda"), sizes=("tiny",))


def test_store_roundtrip_preserves_summary_metrics(sweep, tmp_path):
    store = ResultStore(tmp_path / "sweep.jsonl")
    for result in sweep.results:
        store.append(result)

    rows = store.load()
    assert len(rows) == len(sweep.results)

    # Re-derive the tier gaps from the persisted rows alone.
    def persisted_time(workload, size, tier):
        for row in rows:
            config = row["config"]
            if (config["workload"], config["size"], config["tier"]) == (
                workload, size, tier,
            ):
                return row["execution_time"]
        raise KeyError((workload, size, tier))

    live_gaps = tier_gap_summary(sweep)
    for tier in (1, 2, 3):
        gaps = []
        for workload in ("repartition", "lda"):
            base = persisted_time(workload, "tiny", 0)
            remote = persisted_time(workload, "tiny", tier)
            gaps.append((remote - base) / remote)
        persisted_gap = 100.0 * sum(gaps) / len(gaps)
        assert persisted_gap == pytest.approx(live_gaps[tier], abs=1e-9)


def test_persisted_events_support_correlation(sweep, tmp_path):
    store = ResultStore(tmp_path / "events.jsonl")
    for result in sweep.results:
        store.append(result)
    rows = [r for r in store.load() if r["config"]["tier"] == 2]
    times = [r["execution_time"] for r in rows]
    misses = [r["events"]["llc_load_misses"] for r in rows]
    # Two workloads, one size: the correlation is defined and bounded.
    r = pearson(misses, times)
    assert -1.0 <= r <= 1.0


def test_report_renders_from_live_sweep(sweep):
    report = characterization_report(sweep, title="Integration sweep")
    assert "repartition" in report and "lda" in report
    assert "Tier 0 beats Tier 3" in report
    # lda's NVM ratio exceeds repartition's in the rendered table.
    lda_row = next(l for l in report.splitlines() if "| lda |" in l)
    rep_row = next(l for l in report.splitlines() if "| repartition |" in l)
    lda_t2 = float(lda_row.split("|")[-3].strip().rstrip("x"))
    rep_t2 = float(rep_row.split("|")[-3].strip().rstrip("x"))
    assert lda_t2 > rep_t2


def test_sweep_is_internally_consistent(sweep):
    for result in sweep.results:
        assert result.verified
        assert result.execution_time > 0
        if result.config.tier in (2, 3):
            assert result.nvm_reads + result.nvm_writes > 0
        else:
            assert result.nvm_reads + result.nvm_writes == 0
        assert result.telemetry.elapsed == pytest.approx(
            result.execution_time, rel=1e-6
        )
