"""Dataset artifact cache: codec round trips, corruption tolerance,
LRU eviction, concurrent writers, and the headline property — a capture
served from cached dataset artifacts is bit-identical to one that
regenerated every dataset from its seed."""

from __future__ import annotations

import multiprocessing
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.resultstore import result_to_dict
from repro.core.experiment import ExperimentConfig
from repro.trace import capture_experiment
from repro.workloads import datacache, datagen
from repro.workloads.datacache import DatasetCache, dataset_key

#: One small parameter set per registered codec.
GENERATOR_PARAMS = [
    ("random_text_records", dict(n=64, record_len=16, seed=3)),
    ("zipf_words", dict(n=128, vocabulary=50, exponent=1.3, seed=5)),
    ("rating_triples", dict(n_users=10, n_products=8, n_ratings=64, seed=7)),
    (
        "labeled_documents",
        dict(n_docs=12, n_classes=3, vocabulary=40, words_per_doc=8, seed=9),
    ),
    ("labeled_vectors", dict(n_examples=20, n_features=5, n_classes=2, seed=11)),
    (
        "bag_of_words_docs",
        dict(n_docs=10, vocabulary=30, n_topics=3, words_per_doc=12, seed=13),
    ),
    ("web_graph", dict(n_pages=25, out_degree=4, seed=15)),
]


def generate(name: str, params: dict) -> list:
    """Run the raw generator (bypassing the in-process memo)."""
    return getattr(datagen, name).__wrapped__(**params)


def assert_same_dataset(a: list, b: list) -> None:
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if isinstance(x, tuple) and isinstance(x[-1], np.ndarray):
            assert x[0] == y[0]
            np.testing.assert_array_equal(x[-1], y[-1])
        else:
            assert x == y


@pytest.fixture(autouse=True)
def _isolated_cache():
    """No test leaks an active cache, decoded LRU entries or stats."""
    previous = datacache.active()
    datagen.clear_cache()
    datacache.reset_stats()
    yield
    datacache.configure(None if previous is None else previous.root)
    datagen.clear_cache()
    datacache.reset_stats()


# ------------------------------------------------------------- round trips

@pytest.mark.parametrize("name,params", GENERATOR_PARAMS)
def test_store_load_roundtrip_is_value_identical(tmp_path, name, params):
    cache = DatasetCache(tmp_path)
    value = generate(name, params)
    path = cache.store(name, params, value)
    assert path is not None and path.exists()
    datacache.clear_load_cache()  # force the disk decode path
    loaded = cache.load(name, params)
    assert loaded is not None
    assert_same_dataset(loaded, value)


def test_unknown_generator_has_no_codec(tmp_path):
    cache = DatasetCache(tmp_path)
    assert cache.store("not_a_generator", {}, [1, 2]) is None
    assert cache.load("not_a_generator", {}) is None


def test_keys_lists_stored_artifacts(tmp_path):
    cache = DatasetCache(tmp_path)
    name, params = GENERATOR_PARAMS[0]
    cache.store(name, params, generate(name, params))
    assert cache.keys() == [dataset_key(name, params)]


# -------------------------------------------------------------- corruption

@pytest.fixture
def sealed_artifact(tmp_path):
    name, params = ("bag_of_words_docs", GENERATOR_PARAMS[5][1])
    cache = DatasetCache(tmp_path)
    value = generate(name, params)
    path = cache.store(name, params, value)
    datacache.clear_load_cache()
    return cache, name, params, path, value


def _flip_byte(path: Path, offset: int) -> None:
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))


def test_flipped_payload_byte_fails_the_seal(sealed_artifact):
    cache, name, params, path, _ = sealed_artifact
    _flip_byte(path, path.stat().st_size - 1)
    assert cache.load(name, params) is None


def test_corrupted_header_is_a_miss(sealed_artifact):
    cache, name, params, path, _ = sealed_artifact
    _flip_byte(path, 20)  # inside the JSON header
    assert cache.load(name, params) is None


def test_bad_magic_is_a_miss(sealed_artifact):
    cache, name, params, path, _ = sealed_artifact
    _flip_byte(path, 0)
    assert cache.load(name, params) is None


def test_truncated_artifact_is_a_miss(sealed_artifact):
    cache, name, params, path, _ = sealed_artifact
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    assert cache.load(name, params) is None
    path.write_bytes(raw[:8])  # shorter than the fixed header
    assert cache.load(name, params) is None


def test_corrupt_artifact_is_regenerated_and_healed(sealed_artifact):
    """``fetch`` on a corrupt artifact regenerates — and the store-back
    overwrites the bad file, so the *next* pass hits again."""
    cache, name, params, path, value = sealed_artifact
    _flip_byte(path, path.stat().st_size - 1)
    datacache.configure(cache.root)
    datacache.reset_stats()
    fetched = datacache.fetch(name, params, lambda: generate(name, params))
    assert_same_dataset(fetched, value)
    assert datacache.stats() == {
        "hits": 0, "misses": 1, "stores": 1, "memo_hits": 0,
    }
    datacache.clear_load_cache()
    assert cache.load(name, params) is not None  # healed on disk


def test_version_skew_is_a_miss(sealed_artifact, monkeypatch):
    cache, name, params, _, _ = sealed_artifact
    monkeypatch.setattr(datacache, "DATACACHE_VERSION", 999)
    # A version bump changes the key (different artifact path) *and*
    # rejects an old payload force-fed under the new expectations.
    assert cache.load(name, params) is None


def test_store_failure_never_breaks_generation(tmp_path, monkeypatch):
    datacache.configure(tmp_path)
    monkeypatch.setattr(
        DatasetCache, "store",
        lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
    )
    name, params = GENERATOR_PARAMS[0]
    value = datacache.fetch(name, params, lambda: generate(name, params))
    assert_same_dataset(value, generate(name, params))


# ---------------------------------------------------------------- eviction

def test_decoded_lru_is_bounded_and_reloads_after_eviction(tmp_path):
    cache = DatasetCache(tmp_path)
    name = "random_text_records"
    param_sets = [
        dict(n=8, record_len=4, seed=seed)
        for seed in range(datacache._LOAD_CACHE_LIMIT + 2)
    ]
    for params in param_sets:
        cache.store(name, params, generate(name, params))
    datacache.clear_load_cache()
    for params in param_sets:
        assert cache.load(name, params) is not None
    assert len(datacache._LOAD_CACHE) == datacache._LOAD_CACHE_LIMIT
    # The evicted (oldest) entry decodes again from disk, identically.
    first = cache.load(name, param_sets[0])
    assert first is not None
    assert_same_dataset(first, generate(name, param_sets[0]))


def test_repeated_loads_hit_the_decoded_lru(tmp_path):
    cache = DatasetCache(tmp_path)
    name, params = GENERATOR_PARAMS[0]
    cache.store(name, params, generate(name, params))
    datacache.clear_load_cache()
    first = cache.load(name, params)
    assert cache.load(name, params) is first  # same decoded object


# ------------------------------------------------------------- concurrency

def _store_in_subprocess(root, name, params, value):  # pragma: no cover
    from repro.workloads.datacache import DatasetCache

    DatasetCache(root).store(name, params, value)


def test_concurrent_writers_race_harmlessly(tmp_path):
    """Several processes storing the same key produce one intact
    artifact — atomic rename means readers never observe a torn file."""
    name, params = ("web_graph", GENERATOR_PARAMS[6][1])
    value = generate(name, params)
    procs = [
        multiprocessing.Process(
            target=_store_in_subprocess,
            args=(str(tmp_path), name, params, value),
        )
        for _ in range(4)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(60)
        assert proc.exitcode == 0
    cache = DatasetCache(tmp_path)
    assert cache.keys() == [dataset_key(name, params)]
    assert not list(tmp_path.glob(".tmp-*"))  # no leaked temp files
    loaded = cache.load(name, params)
    assert loaded is not None
    assert_same_dataset(loaded, generate(name, params))


# ------------------------------------------------------------ fetch + memo

def test_fetch_counts_miss_then_hit(tmp_path):
    datacache.configure(tmp_path)
    name, params = GENERATOR_PARAMS[0]
    datacache.fetch(name, params, lambda: generate(name, params))
    datacache.clear_load_cache()
    datacache.fetch(name, params, lambda: generate(name, params))
    assert datacache.stats() == {
        "hits": 1, "misses": 1, "stores": 1, "memo_hits": 0,
    }


def test_fetch_without_active_cache_just_generates():
    datacache.deactivate()
    name, params = GENERATOR_PARAMS[0]
    value = datacache.fetch(name, params, lambda: generate(name, params))
    assert_same_dataset(value, generate(name, params))
    assert datacache.stats() == {
        "hits": 0, "misses": 0, "stores": 0, "memo_hits": 0,
    }


def test_datagen_memo_answers_before_the_artifact_cache(tmp_path):
    datacache.configure(tmp_path)
    datagen.random_text_records(8, record_len=4, seed=41)
    datagen.random_text_records(8, record_len=4, seed=41)
    stats = datacache.stats()
    assert stats["memo_hits"] == 1
    assert stats["misses"] == 1 and stats["stores"] == 1


# ------------------------------------------------------- headline property

#: Workloads whose prepare phase flows through a ``datagen`` generator
#: (kmeans builds its points inline and never touches the cache).
@given(
    workload=st.sampled_from(
        ["sort", "wordcount", "pagerank", "als", "rf", "lda"]
    )
)
@settings(max_examples=6, deadline=None)
def test_cached_dataset_capture_equals_fresh_datagen_capture(workload):
    """The cache never changes what an experiment computes: a capture
    whose prepare phase was served entirely from dataset artifacts is
    bit-identical — result dict and trace checksum — to one that
    regenerated every dataset from its seed."""
    config = ExperimentConfig(workload=workload, size="tiny", tier=1)

    datacache.deactivate()
    datagen.clear_cache()
    fresh_result, fresh_trace = capture_experiment(config)

    with tempfile.TemporaryDirectory(prefix="repro-dataset-prop-") as root:
        datacache.configure(root)
        try:
            datagen.clear_cache()
            capture_experiment(config)  # first pass stores artifacts
            datagen.clear_cache()  # drop the memo → second pass hits disk
            datacache.reset_stats()
            cached_result, cached_trace = capture_experiment(config)
            assert datacache.stats()["hits"] > 0
            assert datacache.stats()["misses"] == 0
        finally:
            datacache.deactivate()

    assert result_to_dict(cached_result) == result_to_dict(fresh_result)
    assert fresh_trace is not None and cached_trace is not None
    assert cached_trace.checksum == fresh_trace.checksum
