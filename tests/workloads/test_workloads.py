"""Workload correctness: every app computes a verifiably right answer."""

import pytest

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.workloads import (
    WORKLOAD_NAMES,
    all_workloads,
    get_workload,
)
from repro.workloads.base import SIZE_ORDER, SizeProfile, Workload
from repro.workloads.registry import register_workload


def fresh_sc(**kwargs) -> SparkContext:
    return SparkContext(conf=SparkConf(memory_tier=0, **kwargs))


# -------------------------------------------------------------------- registry
def test_registry_has_the_papers_seven():
    assert set(WORKLOAD_NAMES) == {
        "sort", "repartition", "als", "bayes", "rf", "lda", "pagerank",
    }


def test_registry_lookup_and_instances():
    sort = get_workload("sort")
    assert sort.name == "sort"
    assert get_workload("sort") is not sort  # fresh instances
    with pytest.raises(KeyError):
        get_workload("terasort")


def test_all_workloads_have_three_sizes():
    for workload in all_workloads():
        assert set(workload.sizes) == set(SIZE_ORDER)
        assert workload.category in ("micro", "ml", "websearch")


def test_register_custom_workload():
    class Custom(Workload):
        name = "custom-test"
        category = "micro"
        sizes = {"tiny": SizeProfile("tiny", {"n": 1})}

    register_workload(Custom)
    assert isinstance(get_workload("custom-test"), Custom)


def test_register_unnamed_rejected():
    class Anonymous(Workload):
        name = ""

    with pytest.raises(ValueError):
        register_workload(Anonymous)


def test_size_profile_params():
    profile = SizeProfile("tiny", {"n": 5})
    assert profile.param("n") == 5
    with pytest.raises(KeyError):
        profile.param("missing")
    with pytest.raises(ValueError):
        SizeProfile("bad", partitions=0)


def test_unknown_size_rejected():
    with pytest.raises(KeyError):
        get_workload("sort").profile("huge")


# --------------------------------------------------------- per-app correctness
def test_sort_produces_sorted_output():
    result = get_workload("sort").run(fresh_sc(), "tiny")
    assert result.verified
    records = list(result.output)
    assert records == sorted(records)


def test_repartition_balances_partitions():
    result = get_workload("repartition").run(fresh_sc(), "tiny")
    assert result.verified
    assert sum(result.output) == 300  # tiny record count


def test_als_reduces_rmse_below_noise_floor():
    result = get_workload("als").run(fresh_sc(), "tiny")
    assert result.verified
    assert result.output["rmse"] < 0.8


def test_bayes_beats_chance():
    result = get_workload("bayes").run(fresh_sc(), "tiny")
    assert result.verified
    assert result.output["accuracy"] > 0.5  # 5 classes → chance is 0.2


def test_rf_trains_full_forest():
    result = get_workload("rf").run(fresh_sc(), "tiny")
    assert result.verified
    assert result.output["trees"] == 8
    assert result.output["accuracy"] > 0.8  # separable two-class data


def test_lda_improves_likelihood_monotonically_overall():
    result = get_workload("lda").run(fresh_sc(), "tiny")
    assert result.verified
    logliks = result.output["loglik"]
    assert logliks[-1] > logliks[0]


def test_pagerank_mass_and_ranking():
    result = get_workload("pagerank").run(fresh_sc(), "tiny")
    assert result.verified
    ranks = result.output["ranks"]
    assert len(ranks) == 50
    # Total rank mass ≈ N for the damping formulation used.
    assert sum(ranks.values()) == pytest.approx(50, rel=0.2)
    assert all(r >= 0.15 - 1e-9 for r in ranks.values())


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_every_workload_records_time_and_records(name):
    result = get_workload(name).run(fresh_sc(), "tiny")
    assert result.execution_time > 0
    assert result.records_processed > 0
    assert result.workload == name
    assert result.size == "tiny"


def test_workload_results_deterministic():
    r1 = get_workload("sort").run(fresh_sc(), "tiny")
    r2 = get_workload("sort").run(fresh_sc(), "tiny")
    assert r1.execution_time == r2.execution_time
    assert list(r1.output) == list(r2.output)


def test_prepare_is_idempotent_within_context():
    sc = fresh_sc()
    workload = get_workload("sort")
    workload.run(sc, "tiny")
    # Second run reuses the staged input (prepare would raise on re-create).
    result = workload.run(sc, "tiny")
    assert result.verified


def test_workload_on_nvm_is_slower_but_correct():
    dram = get_workload("bayes").run(fresh_sc(), "tiny")
    sc_nvm = SparkContext(conf=SparkConf(memory_tier=2))
    nvm = get_workload("bayes").run(sc_nvm, "tiny")
    assert nvm.verified
    assert nvm.output["accuracy"] == dram.output["accuracy"]
    assert nvm.execution_time > dram.execution_time
