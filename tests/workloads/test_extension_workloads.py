"""Extension workloads (wordcount, kmeans) — outside the paper's seven."""

from collections import Counter

import numpy as np
import pytest

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.workloads.registry import (
    EXTENSION_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    all_workloads,
    get_workload,
)
from repro.workloads.ml_kmeans import _farthest_point_init


def fresh_sc():
    return SparkContext(conf=SparkConf(memory_tier=0))


def test_extensions_registered_but_not_in_paper_set():
    assert set(EXTENSION_WORKLOAD_NAMES) == {"wordcount", "kmeans"}
    assert not set(EXTENSION_WORKLOAD_NAMES) & set(WORKLOAD_NAMES)
    for name in EXTENSION_WORKLOAD_NAMES:
        assert get_workload(name).name == name


def test_all_workloads_flag():
    assert len(all_workloads()) == 7
    assert len(all_workloads(include_extensions=True)) == 9


def test_wordcount_counts_exactly():
    sc = fresh_sc()
    workload = get_workload("wordcount")
    result = workload.run(sc, "tiny")
    assert result.verified
    expected = Counter()
    for line in sc.hdfs.read_records(workload.input_path("tiny")):
        expected.update(line.split())
    assert result.output == dict(expected)


def test_wordcount_zipf_distribution_visible():
    result = get_workload("wordcount").run(fresh_sc(), "tiny")
    counts = sorted(result.output.values(), reverse=True)
    assert counts[0] > 5 * counts[len(counts) // 2]  # heavy head


@pytest.mark.parametrize("size", ["tiny", "small"])
def test_kmeans_converges(size):
    result = get_workload("kmeans").run(fresh_sc(), size)
    assert result.verified
    assert result.output["centroids"].shape[0] == 4


def test_farthest_point_init_spreads_seeds():
    rng = np.random.default_rng(5)
    points = np.vstack(
        [rng.normal(loc=c, scale=0.1, size=(20, 2)) for c in ((0, 0), (10, 0), (0, 10), (10, 10))]
    )
    seeds = _farthest_point_init(points, 4)
    # One seed near each true corner cluster.
    corners = np.array([(0, 0), (10, 0), (0, 10), (10, 10)], dtype=float)
    for corner in corners:
        assert min(np.linalg.norm(seeds - corner, axis=1)) < 1.0


def test_extensions_run_on_nvm_tier():
    for name in EXTENSION_WORKLOAD_NAMES:
        sc = SparkContext(conf=SparkConf(memory_tier=2))
        result = get_workload(name).run(sc, "tiny")
        assert result.verified, name


def test_extension_tier_sensitivity():
    def run(name, tier):
        sc = SparkContext(conf=SparkConf(memory_tier=tier))
        return get_workload(name).run(sc, "small").execution_time

    for name in EXTENSION_WORKLOAD_NAMES:
        assert run(name, 2) > run(name, 0), name
