"""Synthetic data generators: determinism and statistical shape."""

import numpy as np
import pytest

from repro.workloads import datagen


def test_random_text_deterministic():
    a = datagen.random_text_records(50, seed=1)
    b = datagen.random_text_records(50, seed=1)
    c = datagen.random_text_records(50, seed=2)
    assert a == b
    assert a != c
    assert all(len(r) == 80 for r in a)


def test_random_text_validation():
    with pytest.raises(ValueError):
        datagen.random_text_records(-1)


def test_zipf_words_skewed():
    words = datagen.zipf_words(5000, vocabulary=100, seed=3)
    counts = {}
    for w in words:
        counts[w] = counts.get(w, 0) + 1
    # Zipf: the most frequent word dominates.
    top = max(counts.values())
    assert top > len(words) / 10
    assert all(w.startswith("word") for w in words)


def test_rating_triples_ranges():
    triples = datagen.rating_triples(20, 30, 200, seed=5)
    assert len(triples) == 200
    users = {u for u, _, _ in triples}
    products = {p for _, p, _ in triples}
    assert users <= set(range(20))
    assert products <= set(range(30))
    assert all(1.0 <= r <= 5.0 for _, _, r in triples)


def test_rating_triples_have_low_rank_signal():
    triples = datagen.rating_triples(50, 50, 1000, seed=7)
    ratings = np.array([r for _, _, r in triples])
    # Structured ratings are not constant and span the scale.
    assert ratings.std() > 0.3


def test_labeled_documents_class_separation():
    docs = datagen.labeled_documents(200, 4, vocabulary=400, words_per_doc=20, seed=9)
    assert len(docs) == 200
    by_class: dict[int, set] = {}
    for label, words in docs:
        by_class.setdefault(label, set()).update(words)
    # Different classes use substantially different vocabulary slices.
    classes = sorted(by_class)
    overlap = len(by_class[classes[0]] & by_class[classes[-1]])
    assert overlap < min(len(by_class[classes[0]]), len(by_class[classes[-1]]))


def test_labeled_vectors_separable_means():
    examples = datagen.labeled_vectors(300, 10, n_classes=2, seed=11)
    x0 = np.array([x for y, x in examples if y == 0]).mean(axis=0)
    x1 = np.array([x for y, x in examples if y == 1]).mean(axis=0)
    assert np.linalg.norm(x0 - x1) > 1.0


def test_bag_of_words_docs_shape():
    docs = datagen.bag_of_words_docs(30, vocabulary=50, n_topics=3, words_per_doc=15, seed=13)
    assert len(docs) == 30
    assert all(len(d) == 15 for d in docs)
    assert all(0 <= w < 50 for d in docs for w in d)


def test_web_graph_properties():
    graph = datagen.web_graph(100, seed=15)
    assert len(graph) == 100
    for page, links in graph:
        assert links, "every page must have at least one outlink"
        assert page not in links
        assert all(0 <= x < 100 for x in links)


def test_web_graph_skew_towards_low_ids():
    graph = datagen.web_graph(200, seed=17)
    indegree = [0] * 200
    for _, links in graph:
        for target in links:
            indegree[target] += 1
    assert sum(indegree[:20]) > sum(indegree[100:120])


def test_web_graph_validation():
    with pytest.raises(ValueError):
        datagen.web_graph(0)
