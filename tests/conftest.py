"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.topology import paper_testbed
from repro.sim import Environment
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def machine(env):
    """The paper's testbed machine."""
    return paper_testbed(env)


@pytest.fixture
def sc() -> SparkContext:
    """A SparkContext on the default (local DRAM) tier."""
    return SparkContext(conf=SparkConf(memory_tier=0, default_parallelism=4))


@pytest.fixture
def sc_nvm() -> SparkContext:
    """A SparkContext bound to the socket-attached NVM tier."""
    return SparkContext(conf=SparkConf(memory_tier=2, default_parallelism=4))
