"""Markdown report generation."""

import pytest

from repro.analysis.reporting import characterization_report
from repro.core.characterization import characterize
from repro.core.sweeps import ExecutorCoreGrid, MbaSweep


@pytest.fixture(scope="module")
def small_run():
    return characterize(workloads=("repartition",), sizes=("tiny",))


def test_report_contains_headline_sections(small_run):
    report = characterization_report(small_run)
    assert report.startswith("# Tiered-memory characterization report")
    assert "## Headline results" in report
    assert "## Execution time per tier" in report
    assert "## Predictability" in report
    assert "Tier 0 beats Tier 3" in report
    assert "repartition" in report


def test_report_includes_optional_sections(small_run):
    sweeps = [MbaSweep("repartition", "tiny", 2, times={10: 1.1, 100: 1.0})]
    grids = [
        ExecutorCoreGrid(
            "repartition", "tiny", 2, times={(1, 40): 1.0, (8, 40): 2.0}
        )
    ]
    report = characterization_report(small_run, mba_sweeps=sweeps, grids=grids)
    assert "Bandwidth-throttling sensitivity" in report
    assert "latency-bound" in report
    assert "Executor/core tuning" in report
    assert "2.00x" in report


def test_report_is_valid_markdown_tables(small_run):
    report = characterization_report(small_run)
    for line in report.splitlines():
        if line.startswith("|"):
            assert line.endswith("|")


def test_report_custom_title(small_run):
    report = characterization_report(small_run, title="Custom Title")
    assert report.startswith("# Custom Title")


def test_cli_report_command(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "report.md"
    assert main(["report", "repartition", "-o", str(out)]) == 0
    text = out.read_text()
    assert "Headline results" in text
    assert "repartition" in text
