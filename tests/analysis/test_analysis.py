"""Analysis utilities: stats, tables, heatmaps, violins, result store."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.heatmap import format_heatmap
from repro.analysis.resultstore import ResultStore
from repro.analysis.stats import describe, geometric_mean, percentile
from repro.analysis.tables import format_table
from repro.analysis.violin import format_violin_row, violin_summaries

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


# ---------------------------------------------------------------------- stats
def test_percentile_basic():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 50) == 3.0
    assert percentile(values, 100) == 5.0
    assert percentile(values, 25) == 2.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


@given(st.lists(floats, min_size=1, max_size=100))
def test_percentile_within_range(values):
    p = percentile(values, 37.5)
    assert min(values) <= p <= max(values)


@given(st.lists(floats, min_size=2, max_size=50), st.integers(0, 100), st.integers(0, 100))
def test_percentile_monotone_in_q(values, q1, q2):
    lo, hi = sorted((q1, q2))
    hi_val = percentile(values, hi)
    # Relative tolerance: interpolation of equal values can round a hair low.
    assert percentile(values, lo) <= hi_val + 1e-9 * max(1.0, abs(hi_val))


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_describe_summary():
    summary = describe([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert summary.count == 8
    assert summary.mean == 5.0
    assert summary.std == pytest.approx(2.0)
    assert summary.minimum == 2.0
    assert summary.maximum == 9.0
    assert summary.iqr == summary.p75 - summary.p25
    assert summary.relative_spread == pytest.approx((9 - 2) / summary.median)


def test_describe_empty_rejected():
    with pytest.raises(ValueError):
        describe([])


# --------------------------------------------------------------------- tables
def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [["sort", 1.234567], ["pagerank", 42]],
        title="Results",
    )
    lines = text.splitlines()
    assert lines[0] == "Results"
    assert "name" in lines[1] and "value" in lines[1]
    assert "sort" in text and "1.23" in text
    # Constant row widths.
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_format_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


# -------------------------------------------------------------------- heatmap
def test_format_heatmap_renders_cells():
    values = {(e, c): float(e * c) for e in (1, 2) for c in (10, 20)}
    text = format_heatmap([1, 2], [10, 20], values, title="grid")
    assert "grid" in text
    assert "40.00" in text


def test_format_heatmap_missing_cells():
    text = format_heatmap([1, 2], [10], {(1, 10): 1.0})
    assert "?" in text


def test_format_heatmap_handles_nan():
    text = format_heatmap([1], [1], {(1, 1): math.nan})
    assert "?" in text


# --------------------------------------------------------------------- violin
def test_violin_row_markers():
    row = format_violin_row("sort-small", [1.0, 1.1, 1.2, 1.3, 5.0])
    assert "M" in row and "|" in row
    assert "sort-small" in row


def test_violin_constant_sample():
    row = format_violin_row("flat", [2.0, 2.0, 2.0])
    assert "spread=0.00%" in row


def test_violin_width_validation():
    with pytest.raises(ValueError):
        format_violin_row("x", [1.0], width=5)


def test_violin_summaries():
    groups = {"a": [1.0, 2.0], "b": [5.0]}
    out = violin_summaries(groups)
    assert out["a"].count == 2
    assert out["b"].median == 5.0


# ---------------------------------------------------------------- result store
def test_result_store_roundtrip(tmp_path):
    from repro.core.experiment import ExperimentConfig, run_experiment

    store = ResultStore(tmp_path / "results.jsonl")
    result = run_experiment(ExperimentConfig(workload="sort", size="tiny", tier=0))
    store.append(result)
    store.append_row({"custom": True})
    rows = store.load()
    assert len(rows) == 2
    assert rows[0]["config"]["workload"] == "sort"
    assert rows[0]["execution_time"] == pytest.approx(result.execution_time)
    assert rows[0]["verified"] is True
    assert rows[1] == {"custom": True}
    store.clear()
    assert store.load() == []
