"""Snapshot tests pinning the public API surface.

The redesign promise is that ``repro.api`` exposes exactly the unified
surface (``RunOptions``/``Session`` + the three verbs) and that the
pre-``RunOptions`` keywords keep working as *deprecated shims* — one
warning per call, identical behaviour.  ``inspect.signature`` snapshots
turn accidental signature drift into a test failure with a diff, so any
intentional change has to edit the expected text here (and the docs).
"""

import inspect
import warnings

import pytest

from repro import api
from repro.options import OPTION_FIELDS, RunOptions


def sig(obj) -> str:
    return str(inspect.signature(obj))


# ---------------------------------------------------------------- __all__
def test_api_all_is_pinned():
    assert api.__all__ == [
        "RunOptions",
        "Session",
        "campaign",
        "config",
        "run",
        "sweep",
    ]


def test_top_level_reexports():
    import repro

    assert repro.RunOptions is api.RunOptions
    assert repro.Session is api.Session
    for name in api.__all__:
        assert name in repro.__all__, name


# ---------------------------------------------------------------- signatures
def test_verb_signatures_are_pinned():
    assert sig(api.run) == (
        "(experiment: 'ExperimentConfig | str', /, "
        "options: 'RunOptions | None' = None, **overrides: 't.Any') "
        "-> 'ExperimentResult'"
    )
    assert sig(api.sweep) == (
        "(base: 'ExperimentConfig | str', axis: 'str', "
        "values: 't.Iterable[t.Any]', *, "
        "options: 'RunOptions | None' = None, "
        "progress: 't.Callable[[CampaignProgress], None] | None' = None, "
        "**legacy: 't.Any') -> 'list[ExperimentResult]'"
    )
    assert sig(api.campaign) == (
        "(configs: 't.Iterable[ExperimentConfig]', *, "
        "options: 'RunOptions | None' = None, "
        "progress: 't.Callable[[CampaignProgress], None] | None' = None, "
        "runner: 'CampaignRunner | None' = None, "
        "**legacy: 't.Any') -> 'CampaignReport'"
    )
    assert sig(api.config) == (
        "(workload: 'str', **fields: 't.Any') -> 'ExperimentConfig'"
    )


def test_session_surface_is_pinned():
    methods = sorted(
        name for name in vars(api.Session)
        if not name.startswith("_")
    )
    assert methods == ["campaign", "config", "run", "service",
                       "sweep", "with_options"]
    assert sig(api.Session.__init__) == (
        "(self, options: 'RunOptions | None' = None, **fields: 't.Any') "
        "-> 'None'"
    )


def test_run_options_fields_are_pinned():
    assert OPTION_FIELDS == (
        "workers", "cache_dir", "observe", "reuse_traces",
        "fast_replay", "dataset_cache", "trace_dir", "dataset_dir",
        "resume", "priority", "metrics_port",
    )
    options = RunOptions()
    assert options.workers is None
    assert options.cache_dir is None
    assert options.observe is None
    assert options.reuse_traces is True
    assert options.fast_replay is True
    assert options.dataset_cache is True
    assert options.trace_dir is None
    assert options.dataset_dir is None
    assert options.resume is True
    assert options.priority == 0
    assert options.metrics_port is None


def test_run_options_is_frozen_and_validates():
    options = RunOptions()
    with pytest.raises(AttributeError):
        options.workers = 4  # type: ignore[misc]
    with pytest.raises(ValueError):
        RunOptions(workers=-1)
    with pytest.raises(TypeError):
        RunOptions(priority="high")  # type: ignore[arg-type]
    with pytest.raises(ValueError):
        RunOptions(metrics_port=70000)


def test_run_options_trace_root_derivation(tmp_path):
    assert RunOptions().trace_root() is None
    assert RunOptions(reuse_traces=False, cache_dir=tmp_path).trace_root() is None
    assert RunOptions(cache_dir=tmp_path).trace_root() == tmp_path / "traces"
    assert RunOptions(
        cache_dir=tmp_path, trace_dir=tmp_path / "elsewhere"
    ).trace_root() == tmp_path / "elsewhere"


def test_run_options_dataset_root_derivation(tmp_path):
    assert RunOptions().dataset_root() is None
    assert RunOptions(dataset_cache=False, cache_dir=tmp_path).dataset_root() is None
    assert RunOptions(cache_dir=tmp_path).dataset_root() == tmp_path / "datasets"
    assert RunOptions(
        cache_dir=tmp_path, dataset_dir=tmp_path / "elsewhere"
    ).dataset_root() == tmp_path / "elsewhere"


# ---------------------------------------------------------------- shims
def test_sweep_legacy_kwargs_warn_exactly_once_and_forward(tmp_path):
    base = api.config("sort", size="tiny")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = api.sweep(
            base, axis="tier", values=(0, 2),
            cache_dir=str(tmp_path / "cache"), reuse_traces=False,
        )
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "cache_dir=" in message and "reuse_traces=" in message
    assert "options=RunOptions" in message

    modern = api.sweep(
        base, axis="tier", values=(0, 2),
        options=RunOptions(cache_dir=str(tmp_path / "cache2"),
                           reuse_traces=False),
    )
    assert [r.execution_time for r in legacy] == [
        r.execution_time for r in modern
    ]


def test_run_legacy_observe_warns_and_forwards():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = api.run("sort", size="tiny", observe=True)
    assert len([w for w in caught
                if issubclass(w.category, DeprecationWarning)]) == 1
    assert result.execution_time == api.run("sort", size="tiny").execution_time


def test_mixing_options_and_legacy_kwargs_raises():
    with pytest.raises(TypeError, match="not both"):
        api.sweep(
            "sort", axis="tier", values=(0,),
            options=RunOptions(), workers=2,
        )


def test_unknown_kwargs_still_raise_type_error():
    with pytest.raises(TypeError, match="unexpected keyword"):
        api.campaign([], wrokers=2)  # typo must not become a silent no-op


def test_campaign_accepts_options_without_warning(tmp_path):
    configs = [api.config("sort", size="tiny", tier=t) for t in (0, 1)]
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        report = api.campaign(
            configs, options=RunOptions(cache_dir=str(tmp_path))
        )
    assert len(report.results) == 2


# ---------------------------------------------------------------- session
def test_session_binds_options_to_every_verb(tmp_path):
    session = api.Session(cache_dir=str(tmp_path), reuse_traces=False)
    assert session.options.cache_dir == str(tmp_path)

    first = session.run("sort", size="tiny", tier=1)
    again = session.run("sort", size="tiny", tier=1)  # cache hit
    assert again.execution_time == first.execution_time

    derived = session.with_options(workers=2)
    assert derived is not session
    assert derived.options.workers == 2
    assert derived.options.cache_dir == str(tmp_path)
    # the original is untouched (sessions are immutable facades)
    assert session.options.workers is None


def test_session_run_matches_module_run():
    session = api.Session()
    direct = api.run("sort", size="tiny", tier=2)
    via_session = session.run("sort", size="tiny", tier=2)
    assert via_session.execution_time == direct.execution_time
    assert via_session.records_processed == direct.records_processed
