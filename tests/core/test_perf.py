"""Unit tests for the ``repro.perf`` profiling harness."""

from __future__ import annotations

import json

import pytest

from repro import perf
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.perf.profiler import PROFILE_SCHEMA_VERSION, PerfProfile
from repro.sim.core import Environment
from repro.spark.executor import Executor


# ------------------------------------------------------------------- profile core

def test_exclusive_attribution_does_not_double_count():
    prof = PerfProfile()
    prof.start()
    prof.enter("outer")
    prof.enter("inner")
    prof.exit()
    prof.exit()
    prof.stop()
    assert prof.calls == {"outer": 1, "inner": 1}
    # Exclusive spans sum to at most the window: the inner span's time
    # was subtracted from the outer's, not counted twice.
    assert prof.attributed_wall_s <= prof.total_wall_s
    assert all(seconds >= 0.0 for seconds in prof.wall_s.values())


def test_to_dict_schema():
    prof = PerfProfile()
    prof.start()
    prof.enter("sub")
    prof.exit()
    prof.stop()
    payload = prof.to_dict()
    assert payload["schema"] == PROFILE_SCHEMA_VERSION
    assert set(payload) == {
        "schema", "total_wall_s", "attributed_wall_s", "subsystems",
    }
    assert set(payload["subsystems"]["sub"]) == {"calls", "wall_s", "share"}
    assert payload["subsystems"]["sub"]["calls"] == 1


def test_to_json_writes_file(tmp_path):
    prof = PerfProfile()
    prof.start()
    prof.enter("sub")
    prof.exit()
    prof.stop()
    out = tmp_path / "profile.json"
    text = prof.to_json(str(out))
    assert json.loads(out.read_text()) == json.loads(text)


def test_format_renders_table():
    prof = PerfProfile()
    prof.start()
    prof.enter("sim.kernel")
    prof.exit()
    prof.stop()
    table = prof.format()
    assert "sim.kernel" in table
    assert "attributed" in table


# -------------------------------------------------------------- instrumentation

def test_install_uninstall_restores_originals():
    step_before = Environment.step
    evaluate_before = Executor._evaluate
    with perf.profile() as prof:
        assert perf.active_profile() is prof
        assert Environment.step is not step_before
    assert perf.active_profile() is None
    assert Environment.step is step_before
    assert Executor._evaluate is evaluate_before


def test_double_install_rejected():
    with perf.profile():
        with pytest.raises(RuntimeError):
            perf.install(PerfProfile())


def test_uninstall_without_install_is_noop():
    perf.uninstall()
    assert perf.active_profile() is None


def test_profiled_experiment_attributes_subsystems():
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    baseline = run_experiment(config)
    with perf.profile() as prof:
        profiled = run_experiment(config)
    # Profiling is observational: simulated outputs are unchanged.
    assert profiled.execution_time == baseline.execution_time
    assert profiled.telemetry.events == baseline.telemetry.events
    # All major subsystems show up with plausible accounting.
    for subsystem in ("sim.kernel", "rdd.compute", "spark.shuffle", "memory.model"):
        assert prof.calls.get(subsystem, 0) > 0, subsystem
        assert prof.wall_s.get(subsystem, 0.0) >= 0.0, subsystem
    assert prof.total_wall_s > 0.0
    assert prof.attributed_wall_s <= prof.total_wall_s
