"""Capacity planner and trace-replay workload."""

import math

import pytest

from repro.core.capacity import (
    DEFAULT_CANDIDATES,
    CapacityPlanner,
    NodeConfig,
)
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.costs import CostSpec
from repro.workloads.trace_replay import StageSpec, TraceReplayWorkload, TraceSpec


# ------------------------------------------------------------------- capacity
def test_node_config_validation():
    with pytest.raises(ValueError):
        NodeConfig("bad", dram_gib=-1, nvm_gib=0)
    with pytest.raises(ValueError):
        NodeConfig("empty", dram_gib=0, nvm_gib=0)


def test_node_config_cost():
    config = NodeConfig("x", dram_gib=100, nvm_gib=200)
    assert config.cost(dram_per_gib=8, nvm_per_gib=3) == 800 + 600
    assert config.total_gib == 300


@pytest.fixture(scope="module")
def planner():
    return CapacityPlanner("repartition", "tiny")


def test_fits_in_dram_means_no_slowdown(planner):
    config = NodeConfig("big-dram", dram_gib=512, nvm_gib=0)
    assert planner.expected_slowdown(config, working_set_gib=256) == 1.0


def test_dram_only_overflow_is_infeasible(planner):
    config = NodeConfig("small-dram", dram_gib=64, nvm_gib=0)
    assert math.isinf(planner.expected_slowdown(config, working_set_gib=256))


def test_hybrid_slowdown_between_one_and_nvm(planner):
    config = NodeConfig("hybrid", dram_gib=128, nvm_gib=512)
    slowdown = planner.expected_slowdown(config, working_set_gib=256)
    assert 1.0 < slowdown < 10.0


def test_slowdown_grows_as_dram_fraction_shrinks(planner):
    big = planner.expected_slowdown(NodeConfig("a", 192, 512), 256)
    small = planner.expected_slowdown(NodeConfig("b", 64, 512), 256)
    assert small > big


def test_plan_picks_cheapest_feasible(planner):
    plan = planner.plan(working_set_gib=256, slowdown_budget=3.0)
    assert plan.recommended is not None
    cost, slowdown, feasible = plan.evaluations[plan.recommended.name]
    assert feasible and slowdown <= 3.0
    for name, (other_cost, _s, other_feasible) in plan.evaluations.items():
        if other_feasible:
            assert cost <= other_cost
    assert "recommended:" in plan.describe()


def test_plan_tight_budget_prefers_dram(planner):
    plan = planner.plan(working_set_gib=200, slowdown_budget=1.0)
    assert plan.recommended is not None
    assert plan.recommended.dram_gib >= 200


def test_plan_impossible_returns_none(planner):
    plan = planner.plan(working_set_gib=10_000, slowdown_budget=1.1)
    assert plan.recommended is None
    assert "none feasible" in plan.describe()


def test_plan_budget_validation(planner):
    with pytest.raises(ValueError):
        planner.plan(100, slowdown_budget=0.5)
    with pytest.raises(ValueError):
        planner.expected_slowdown(DEFAULT_CANDIDATES[0], working_set_gib=0)


# ---------------------------------------------------------------- trace replay
def make_spec():
    return TraceSpec(
        name="etl",
        stages=(
            StageSpec("extract", records=2_000, record_bytes=128,
                      cost=CostSpec(ops_per_record=100, random_reads_per_record=4)),
            StageSpec("join", records=2_000, shuffle=True,
                      cost=CostSpec(ops_per_record=250, random_reads_per_record=12,
                                    random_writes_per_record=4)),
            StageSpec("aggregate", records=500, selectivity=0.25, shuffle=True,
                      cost=CostSpec(ops_per_record=150, random_reads_per_record=6)),
        ),
        partitions=4,
    )


def test_trace_spec_validation():
    with pytest.raises(ValueError):
        TraceSpec(name="empty", stages=())
    with pytest.raises(ValueError):
        StageSpec("bad", records=0)
    with pytest.raises(ValueError):
        StageSpec("bad", records=1, selectivity=0)


def test_trace_json_roundtrip():
    spec = make_spec()
    restored = TraceSpec.from_json(spec.to_json())
    assert restored == spec


def test_trace_load_from_file(tmp_path):
    spec = make_spec()
    path = tmp_path / "trace.json"
    path.write_text(spec.to_json())
    assert TraceSpec.load(path) == spec


def test_trace_scaling():
    spec = make_spec().scaled(0.1)
    assert spec.stages[0].records == 200
    assert spec.stages[2].records == 50


def test_trace_replay_executes_and_verifies():
    workload = TraceReplayWorkload.from_spec(make_spec())
    sc = SparkContext(conf=SparkConf(memory_tier=0))
    result = workload.run(sc, "small")
    assert result.verified
    assert result.output["stages"] == 3
    assert result.records_processed == 4_500


def test_trace_replay_tier_sensitive():
    workload_spec = make_spec()

    def run(tier):
        sc = SparkContext(conf=SparkConf(memory_tier=tier))
        return TraceReplayWorkload.from_spec(workload_spec).run(sc, "small").execution_time

    assert run(2) > run(0)


def test_trace_replay_sizes_scale():
    workload = TraceReplayWorkload.from_spec(make_spec())
    sc = SparkContext(conf=SparkConf(memory_tier=0))
    tiny = workload.run(sc, "tiny")
    sc2 = SparkContext(conf=SparkConf(memory_tier=0))
    large = TraceReplayWorkload.from_spec(make_spec()).run(sc2, "large")
    assert large.records_processed > tiny.records_processed
    assert large.execution_time > tiny.execution_time
