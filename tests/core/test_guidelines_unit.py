"""Guideline checkers in isolation, on synthetic measurements.

These tests construct hand-crafted :class:`ExperimentResult` sets so each
takeaway checker's decision logic is exercised without running the
simulator — including the *negative* cases (a checker must be able to
say VIOLATED).
"""

import pytest

from repro.core.characterization import CharacterizationRun
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.guidelines import (
    takeaway1_remote_tolerance,
    takeaway2_nvm_gap_grows,
    takeaway4_latency_bound,
    takeaway6_executor_contention,
    takeaway7_large_workloads_scale,
)
from repro.core.sweeps import ExecutorCoreGrid, MbaSweep
from repro.memory.energy import EnergyReport
from repro.telemetry.collector import TelemetrySample
from repro.telemetry.ipmctl import DimmPerformance


def fake_result(
    workload: str,
    size: str,
    tier: int,
    time: float,
    nvm_reads: int = 0,
    nvm_writes: int = 0,
) -> ExperimentResult:
    perf = [
        DimmPerformance(
            dimm_id="nvm/dimm0",
            media_reads=nvm_reads,
            media_writes=nvm_writes,
            bytes_read=nvm_reads * 64,
            bytes_written=nvm_writes * 64,
        )
    ]
    sample = TelemetrySample(elapsed=time, dimm_performance=perf)
    return ExperimentResult(
        config=ExperimentConfig(workload=workload, size=size, tier=tier),
        execution_time=time,
        verified=True,
        telemetry=sample,
    )


def synthetic_run(times: dict[tuple[str, str, int], float]) -> CharacterizationRun:
    run = CharacterizationRun()
    for (workload, size, tier), time in times.items():
        run.add(fake_result(workload, size, tier, time))
    return run


# ------------------------------------------------------------------ takeaway 1
def test_t1_holds_with_mixed_tolerance():
    run = synthetic_run(
        {
            ("a", "tiny", 0): 1.0, ("a", "tiny", 1): 1.05,  # tolerant
            ("b", "tiny", 0): 1.0, ("b", "tiny", 1): 1.9,   # sensitive
        }
    )
    finding = takeaway1_remote_tolerance(run)
    assert finding.holds
    assert finding.evidence["tolerant_combinations"] == 1


def test_t1_violated_when_uniformly_sensitive():
    run = synthetic_run(
        {
            ("a", "tiny", 0): 1.0, ("a", "tiny", 1): 1.8,
            ("b", "tiny", 0): 1.0, ("b", "tiny", 1): 1.85,
        }
    )
    assert not takeaway1_remote_tolerance(run).holds


# ------------------------------------------------------------------ takeaway 2
def test_t2_holds_when_gap_grows():
    run = synthetic_run(
        {
            ("a", "tiny", 0): 1.0, ("a", "tiny", 2): 2.0,
            ("a", "large", 0): 10.0, ("a", "large", 2): 40.0,
            ("a", "tiny", 1): 1.0, ("a", "large", 1): 10.0,
            ("a", "tiny", 3): 2.0, ("a", "large", 3): 40.0,
        }
    )
    finding = takeaway2_nvm_gap_grows(run)
    assert finding.holds
    assert finding.evidence["gap_long_runs"] > finding.evidence["gap_short_runs"]


def test_t2_violated_when_gap_shrinks():
    run = synthetic_run(
        {
            ("a", "tiny", 0): 1.0, ("a", "tiny", 2): 4.0,
            ("a", "large", 0): 10.0, ("a", "large", 2): 12.0,
            ("a", "tiny", 1): 1.0, ("a", "large", 1): 10.0,
            ("a", "tiny", 3): 4.0, ("a", "large", 3): 12.0,
        }
    )
    assert not takeaway2_nvm_gap_grows(run).holds


# ------------------------------------------------------------------ takeaway 4
def test_t4_holds_when_flat():
    sweep = MbaSweep("a", "tiny", 2, times={10: 1.02, 50: 1.01, 100: 1.0})
    finding = takeaway4_latency_bound([sweep])
    assert finding.holds
    assert finding.evidence["worst_mba_spread"] < 0.05


def test_t4_violated_when_bandwidth_bound():
    sweep = MbaSweep("a", "tiny", 2, times={10: 5.0, 50: 1.5, 100: 1.0})
    assert not takeaway4_latency_bound([sweep]).holds


def test_t4_empty_sweeps_do_not_hold():
    assert not takeaway4_latency_bound([]).holds


# ------------------------------------------------------------------ takeaway 6
def test_t6_holds_on_contention():
    grid = ExecutorCoreGrid(
        "a", "tiny", 2, times={(1, 40): 1.0, (8, 40): 2.5}
    )
    finding = takeaway6_executor_contention(grid)
    assert finding.holds
    assert finding.evidence["slowdown_at_max_executors"] == pytest.approx(2.5)


def test_t6_violated_on_scaling():
    grid = ExecutorCoreGrid("a", "tiny", 2, times={(1, 40): 1.0, (8, 40): 0.5})
    assert not takeaway6_executor_contention(grid).holds


# ------------------------------------------------------------------ takeaway 7
def test_t7_holds_when_large_scales_better():
    small = ExecutorCoreGrid("a", "small", 2, times={(1, 40): 1.0, (8, 40): 2.0})
    large = ExecutorCoreGrid("a", "large", 2, times={(1, 40): 10.0, (8, 40): 6.0})
    finding = takeaway7_large_workloads_scale(small, large)
    assert finding.holds
    assert finding.evidence["large_scaling_ratio"] < 1.0


def test_t7_violated_when_no_size_effect():
    small = ExecutorCoreGrid("a", "small", 2, times={(1, 40): 1.0, (8, 40): 1.5})
    large = ExecutorCoreGrid("a", "large", 2, times={(1, 40): 10.0, (8, 40): 15.0})
    assert not takeaway7_large_workloads_scale(small, large).holds


# ------------------------------------------------------------------- reporting
def test_finding_describe_format():
    run = synthetic_run(
        {
            ("a", "tiny", 0): 1.0, ("a", "tiny", 1): 1.05,
            ("b", "tiny", 0): 1.0, ("b", "tiny", 1): 1.9,
        }
    )
    text = takeaway1_remote_tolerance(run).describe()
    assert text.startswith("Takeaway 1 [HOLDS]")
    assert "=" in text


# ------------------------------------------------------------------ grid maths
def test_grid_helpers():
    grid = ExecutorCoreGrid(
        "a", "s", 2, times={(1, 40): 2.0, (2, 40): 1.0, (8, 40): 4.0}
    )
    assert grid.baseline_time == 2.0
    assert grid.speedup(2, 40) == pytest.approx(2.0)
    assert grid.worst_slowdown() == pytest.approx(2.0)
    assert grid.best_speedup() == pytest.approx(2.0)


def test_mba_sweep_spread():
    sweep = MbaSweep("a", "s", 2, times={10: 2.0, 100: 1.0})
    assert sweep.spread() == pytest.approx(1.0)
