"""Self-check harness."""

import pytest

from repro.core.selfcheck import (
    ALL_CHECKS,
    check_determinism,
    check_table1,
    check_tier_monotonicity,
    check_write_asymmetry,
    run_selfcheck,
)


def test_table1_check_passes():
    result = check_table1()
    assert result.passed, result.detail


def test_write_asymmetry_check_passes():
    assert check_write_asymmetry().passed


def test_tier_monotonicity_check_passes():
    result = check_tier_monotonicity()
    assert result.passed, result.detail
    assert "ms" in result.detail


def test_determinism_check_passes():
    assert check_determinism().passed


def test_run_selfcheck_all_pass():
    results = run_selfcheck()
    assert len(results) == len(ALL_CHECKS)
    assert all(r.passed for r in results), [r.describe() for r in results]


def test_describe_format():
    result = check_write_asymmetry()
    assert result.describe().startswith("[PASS]")


def test_cli_selfcheck(capsys):
    from repro.__main__ import main

    assert main(["selfcheck"]) == 0
    out = capsys.readouterr().out
    assert "5/5 checks passed" in out
