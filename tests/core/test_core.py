"""Core characterization layer: experiments, correlations, microbench,
prediction, sweeps, guidelines, placement, ablation."""

import math

import pytest

from repro.core.ablation import ABLATIONS, run_ablation
from repro.core.characterization import (
    CharacterizationRun,
    characterize,
    dram_energy_advantage,
    technology_gap_summary,
    tier_gap_summary,
)
from repro.core.correlation import (
    average_abs_correlation,
    hardware_spec_correlation,
    metric_time_correlation,
    pearson,
)
from repro.core.experiment import ExperimentConfig, run_experiment, run_experiments
from repro.core.microbench import measure_tier_specs
from repro.core.placement import (
    DATA_CATEGORY_AFFINITIES,
    predict_slowdown,
    recommend_tier,
)
from repro.core.prediction import LinearTierPredictor, predict_cross_tier
from repro.core.sweeps import executor_core_sweep, mba_sweep
from repro.memory.tiers import TIER_LOCAL_DRAM, TIER_LOCAL_NVM


# ------------------------------------------------------------------ experiment
def test_experiment_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(workload="sort", tier=5)
    with pytest.raises(ValueError):
        ExperimentConfig(workload="sort", mba_percent=0)
    with pytest.raises(ValueError):
        ExperimentConfig(workload="sort", num_executors=0)


def test_experiment_config_key_and_describe():
    config = ExperimentConfig(workload="sort", size="tiny", tier=2)
    assert config.key() == ("sort", "tiny", 2, 1, 40, 100)
    assert "sort-tiny" in config.describe()
    derived = config.with_options(tier=3)
    assert derived.tier == 3 and config.tier == 2


def test_run_experiment_is_deterministic():
    config = ExperimentConfig(workload="repartition", size="tiny", tier=2)
    a = run_experiment(config)
    b = run_experiment(config)
    assert a.execution_time == b.execution_time
    assert a.nvm_reads == b.nvm_reads
    assert a.verified and b.verified


def test_run_experiment_populates_telemetry():
    result = run_experiment(ExperimentConfig(workload="sort", size="tiny", tier=2))
    assert result.execution_time > 0
    assert result.nvm_reads > 0 and result.nvm_writes > 0
    assert result.events["instructions"] > 0
    assert result.energy_joules("numa2-nvm4") > 0
    row = result.summary_row()
    assert row["verified"] is True


def test_run_experiments_batch_with_progress():
    seen = []
    configs = [
        ExperimentConfig(workload="sort", size="tiny", tier=t) for t in (0, 2)
    ]
    with pytest.warns(DeprecationWarning, match="repro.api.campaign"):
        results = run_experiments(configs, progress=seen.append)
    assert len(results) == 2
    assert seen == configs


def test_dram_run_has_no_nvm_traffic():
    result = run_experiment(ExperimentConfig(workload="sort", size="tiny", tier=0))
    assert result.nvm_reads == 0
    assert result.nvm_writes == 0


# ----------------------------------------------------------------- correlation
def test_pearson_perfect_positive():
    assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)


def test_pearson_perfect_negative():
    assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)


def test_pearson_degenerate_cases():
    assert math.isnan(pearson([1], [1]))
    assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))
    with pytest.raises(ValueError):
        pearson([1, 2], [1])


def test_pearson_matches_scipy():
    from scipy.stats import pearsonr

    xs = [1.0, 2.5, 3.1, 4.9, 5.2, 6.0]
    ys = [2.1, 2.2, 3.9, 4.1, 5.5, 5.2]
    assert pearson(xs, ys) == pytest.approx(pearsonr(xs, ys).statistic)


@pytest.fixture(scope="module")
def tier_sweep_results():
    """sort across every tier, both sizes — reused by several tests."""
    return [
        run_experiment(ExperimentConfig(workload="sort", size=size, tier=tier))
        for size in ("tiny", "small")
        for tier in (0, 1, 2, 3)
    ]


def test_hardware_spec_correlation_signs(tier_sweep_results):
    hw = hardware_spec_correlation(tier_sweep_results)
    for row in hw.values():
        assert row["latency"] > 0.7
        assert row["bandwidth"] < -0.5


def test_metric_time_correlation_structure(tier_sweep_results):
    local = [r for r in tier_sweep_results if r.config.tier == 0]
    matrix = metric_time_correlation(local)
    assert "sort" in matrix
    avg = average_abs_correlation(matrix)
    assert 0 <= avg["sort"] <= 1


# ------------------------------------------------------------------ microbench
def test_microbench_reproduces_table1():
    table1 = {0: (77.8, 39.3), 1: (130.9, 31.6), 2: (172.1, 10.7), 3: (231.3, 0.47)}
    for measurement in measure_tier_specs():
        latency, bandwidth = table1[measurement.tier_id]
        assert measurement.idle_latency_ns == pytest.approx(latency, rel=0.02)
        assert measurement.read_bandwidth_gbps == pytest.approx(bandwidth, rel=0.02)
        assert measurement.write_bandwidth_gbps <= measurement.read_bandwidth_gbps + 1e-9


# ------------------------------------------------------------------ prediction
def test_predictor_requires_fit_and_data(tier_sweep_results):
    model = LinearTierPredictor()
    with pytest.raises(RuntimeError):
        model.predict(0)
    with pytest.raises(ValueError):
        model.fit(tier_sweep_results[:1])


def test_predictor_fits_tier_sweep_well(tier_sweep_results):
    small = [r for r in tier_sweep_results if r.config.size == "small"]
    model = LinearTierPredictor().fit(small)
    assert model.score(small) > 0.9


def test_leave_one_tier_out_prediction(tier_sweep_results):
    predictions = predict_cross_tier(tier_sweep_results, held_out_tier=2)
    assert predictions
    for p in predictions:
        assert p.held_out_tier == 2
        assert p.relative_error < 0.6  # rough but informative


# --------------------------------------------------------------------- sweeps
def test_mba_sweep_insensitive(quick_levels=(10, 50, 100)):
    base = ExperimentConfig(workload="repartition", size="tiny", tier=2)
    sweep = mba_sweep(base, levels=quick_levels)
    assert set(sweep.times) == set(quick_levels)
    assert sweep.base == base
    assert sweep.spread() < 0.3
    # Less bandwidth can never help.
    assert sweep.times[10] >= sweep.times[100]


def test_mba_sweep_legacy_signature_deprecated():
    with pytest.warns(DeprecationWarning, match="base ExperimentConfig"):
        sweep = mba_sweep("repartition", "tiny", tier=2, levels=(50, 100))
    assert set(sweep.times) == {50, 100}
    assert sweep.workload == "repartition" and sweep.tier == 2


def test_sweeps_propagate_base_fields():
    """cpu_socket / label / speculation must flow through every point."""
    base = ExperimentConfig(
        workload="repartition", size="tiny", tier=2, label="probe",
        speculation=True,
    )
    sweep = mba_sweep(base, levels=(100,))
    assert sweep.base is not None
    assert sweep.base.label == "probe" and sweep.base.speculation
    grid = executor_core_sweep(base, executors=(1,), cores=(40,))
    assert grid.base is not None and grid.base.label == "probe"


def test_executor_core_sweep_grid():
    grid = executor_core_sweep(
        ExperimentConfig(workload="repartition", size="tiny", tier=2),
        executors=(1, 4), cores=(20, 40),
    )
    assert (1, 40) in grid.times
    assert grid.baseline_time > 0
    assert grid.worst_slowdown() >= 1.0
    assert grid.speedup(1, 40) == pytest.approx(1.0)
    assert set(grid.speedup_grid()) >= {(1, 20), (4, 40)}


# ---------------------------------------------------------------- guidelines
@pytest.fixture(scope="module")
def mini_characterization():
    return characterize(
        workloads=("sort", "lda"), sizes=("tiny", "small"), tiers=(0, 1, 2, 3)
    )


def test_characterization_indexing(mini_characterization):
    run = mini_characterization
    assert run.workloads() == ["sort", "lda"]
    assert run.sizes() == ["tiny", "small"]
    assert run.tiers() == [0, 1, 2, 3]
    assert run.all_verified()
    assert run.time("sort", "tiny", 0) > 0
    with pytest.raises(KeyError):
        run.get("bayes", "tiny", 0)


def test_tier_gaps_positive_and_ordered(mini_characterization):
    gaps = tier_gap_summary(mini_characterization)
    assert 0 < gaps[1] < gaps[2] < gaps[3] < 100


def test_technology_gap_positive(mini_characterization):
    assert technology_gap_summary(mini_characterization) > 0


def test_dram_energy_advantage_positive(mini_characterization):
    advantage = dram_energy_advantage(mini_characterization)
    assert 0 < advantage < 100


# ------------------------------------------------------------------ placement
def test_predict_slowdown_monotone_in_tier():
    summary = {
        "random_reads": 1e6,
        "random_writes": 5e5,
        "bytes_read": 1e8,
        "bytes_written": 1e8,
        "compute_ops": 1e8,
    }
    dram = predict_slowdown(summary, TIER_LOCAL_DRAM, TIER_LOCAL_DRAM)
    nvm = predict_slowdown(summary, TIER_LOCAL_NVM, TIER_LOCAL_DRAM)
    assert dram == pytest.approx(1.0)
    assert nvm > 1.0


def test_recommend_tier_respects_budget():
    tight = recommend_tier("repartition", "tiny", slowdown_budget=1.01)
    loose = recommend_tier("repartition", "tiny", slowdown_budget=50.0)
    assert tight.recommended_tier <= loose.recommended_tier
    assert loose.recommended_tier == 3
    assert "tier" in tight.describe()


def test_category_affinities_cover_both_kinds():
    kinds = {a.preferred_kind for a in DATA_CATEGORY_AFFINITIES}
    assert kinds == {"dram", "nvm"}


# -------------------------------------------------------------------- ablation
def test_ablation_names():
    assert set(ABLATIONS) == {
        "baseline",
        "no_write_asymmetry",
        "dram_class_latency",
        "no_media_amplification",
    }


def test_ablation_write_asymmetry_matters_for_lda():
    result = run_ablation("lda", "tiny", tier_id=2, executors=1)
    assert result.times["no_write_asymmetry"] < result.times["baseline"]
    assert result.contribution("no_write_asymmetry") > 0


def test_ablation_rejects_dram_tier():
    with pytest.raises(ValueError):
        run_ablation("sort", "tiny", tier_id=0)
