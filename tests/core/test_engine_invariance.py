"""Engine invariance: hot-path optimizations are value-identical.

The perf pass (``repro.perf`` + batched operators, memoized estimators,
``__slots__`` kernels) carries a hard guarantee: simulated time, memory
traffic and energy are bit-identical to the unoptimized engine.  This
module pins that guarantee three ways:

- golden probe: the Fig. 2 probe job's per-device access counters,
  recorded from the seed engine, compared exactly;
- golden grid points: full experiments whose execution time, energy and
  per-DIMM counters are pinned to the seed engine's outputs;
- hypothesis properties: every batched operator path (partitioners,
  data generators) equals its naive per-record counterpart on
  arbitrary — including mixed-type — data.
"""

from __future__ import annotations

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.partitioner import (
    HashPartitioner,
    RangePartitioner,
    ReversedPartitioner,
)
from repro.spark.serializer import SAMPLE_SIZE, sizeof_value
from repro.workloads import datagen
from tests.core.test_benchmark_regression import REFERENCE_TIMES

SETTINGS = settings(max_examples=25, deadline=None)

# ---------------------------------------------------------------- golden probe

#: Per-device access counters of the probe job, recorded from the seed
#: engine (pre-optimization).  Key: tier -> active device -> counters.
#: Regenerate only for a deliberate, explained model change.
REFERENCE_PROBE_COUNTERS = {
    0: (
        "numa1-dram",
        {
            "media_reads": 1578762,
            "media_writes": 880546,
            "bytes_read": 101040634,
            "bytes_written": 56354174,
            "random_reads": 1118856,
            "random_writes": 388370,
        },
    ),
    1: (
        "numa0-dram",
        {
            "media_reads": 1580862,
            "media_writes": 881446,
            "bytes_read": 101175034,
            "bytes_written": 56411774,
            "random_reads": 1120956,
            "random_writes": 389270,
        },
    ),
    2: (
        "numa2-nvm4",
        {
            "media_reads": 1241888,
            "media_writes": 514868,
            "bytes_read": 101555834,
            "bytes_written": 56574974,
            "random_reads": 1126906,
            "random_writes": 391820,
        },
    ),
    3: (
        "numa3-nvm2",
        {
            "media_reads": 1250638,
            "media_writes": 518618,
            "bytes_read": 102115834,
            "bytes_written": 56814974,
            "random_reads": 1135656,
            "random_writes": 395570,
        },
    ),
}


def run_probe(tier: int) -> tuple[float, dict[str, dict[str, int]]]:
    """The benchmark-regression probe job, also reporting device traffic."""
    conf = SparkConf(
        memory_tier=tier,
        num_executors=2,
        executor_cores=4,
        default_parallelism=8,
    )
    sc = SparkContext(conf=conf)
    (
        sc.parallelize(range(2000), 8)
        .map(lambda x: (x % 50, x))
        .reduce_by_key(operator.add)
        .collect()
    )
    elapsed = sc.total_job_time()
    devices = {
        device.name: {
            "media_reads": device.counters.media_reads,
            "media_writes": device.counters.media_writes,
            "bytes_read": device.counters.bytes_read,
            "bytes_written": device.counters.bytes_written,
            "random_reads": device.counters.random_reads,
            "random_writes": device.counters.random_writes,
        }
        for device in sc.machine.devices()
    }
    sc.stop()
    return elapsed, devices


@pytest.mark.parametrize("tier", sorted(REFERENCE_PROBE_COUNTERS))
def test_probe_time_and_traffic_pinned(tier):
    elapsed, devices = run_probe(tier)
    # Reuses the benchmark-regression execution-time pins.
    assert elapsed == pytest.approx(REFERENCE_TIMES[tier], rel=1e-12)
    active_device, expected = REFERENCE_PROBE_COUNTERS[tier]
    assert devices[active_device] == expected
    for name, counters in devices.items():
        if name != active_device:
            assert set(counters.values()) == {0}, name


# ---------------------------------------------------------- golden grid points

#: Full experiments pinned against the seed engine: (config, expected
#: execution time, records, active-device energy, one DIMM's counters).
REFERENCE_EXPERIMENTS = [
    (
        ("lda", "small", 3),
        0.5619870217828936,
        36000,
        (
            "numa3-nvm2",
            {
                "static_joules": 5.619870217828936,
                "read_joules": 0.010411287703125001,
                "write_joules": 0.060242448000000004,
            },
        ),
        None,
    ),
    (
        ("bayes", "small", 1),
        0.08139977961674165,
        45000,
        (
            "numa0-dram",
            {
                "static_joules": 0.5697984573171916,
                "read_joules": 0.014194007471874999,
                "write_joules": 0.007434709373437499,
            },
        ),
        (
            "numa0-dram/dimm0",
            {
                "media_reads": 921700,
                "media_writes": 482777,
                "bytes_read": 58988088,
                "bytes_written": 30897498,
            },
        ),
    ),
]


def _assert_matches_pins(result, expected_time, expected_records, energy_pin, dimm_pin):
    assert result.verified
    assert result.records_processed == expected_records
    assert result.execution_time == pytest.approx(expected_time, rel=1e-12)
    device, joules = energy_pin
    report = result.telemetry.energy[device]
    assert report.static_joules == pytest.approx(joules["static_joules"], rel=1e-12)
    assert report.read_joules == pytest.approx(joules["read_joules"], rel=1e-12)
    assert report.write_joules == pytest.approx(joules["write_joules"], rel=1e-12)
    if dimm_pin is not None:
        dimm_id, expected = dimm_pin
        perf = {p.dimm_id: p for p in result.telemetry.dimm_performance}[dimm_id]
        assert perf.media_reads == expected["media_reads"]
        assert perf.media_writes == expected["media_writes"]
        assert perf.bytes_read == expected["bytes_read"]
        assert perf.bytes_written == expected["bytes_written"]


@pytest.mark.parametrize(
    "point,expected_time,expected_records,energy_pin,dimm_pin",
    REFERENCE_EXPERIMENTS,
    ids=["-".join(map(str, e[0])) for e in REFERENCE_EXPERIMENTS],
)
def test_experiment_pinned(point, expected_time, expected_records, energy_pin, dimm_pin):
    workload, size, tier = point
    result = run_experiment(ExperimentConfig(workload=workload, size=size, tier=tier))
    _assert_matches_pins(result, expected_time, expected_records, energy_pin, dimm_pin)


@pytest.mark.parametrize(
    "point,expected_time,expected_records,energy_pin,dimm_pin",
    REFERENCE_EXPERIMENTS,
    ids=["replay-" + "-".join(map(str, e[0])) for e in REFERENCE_EXPERIMENTS],
)
def test_replay_matches_pinned_experiments(
    point, expected_time, expected_records, energy_pin, dimm_pin
):
    """Trace replay extends the value-identical guarantee: capturing the
    workload on a *different* tier and replaying it onto the pinned one
    must land exactly on the seed engine's golden numbers."""
    from repro.trace import capture_experiment, replay_experiment

    workload, size, tier = point
    capture_config = ExperimentConfig(
        workload=workload, size=size, tier=(tier + 2) % 4
    )
    _, trace = capture_experiment(capture_config)
    assert trace is not None
    result = replay_experiment(capture_config.with_options(tier=tier), trace)
    _assert_matches_pins(result, expected_time, expected_records, energy_pin, dimm_pin)


@pytest.mark.parametrize(
    "point,expected_time,expected_records,energy_pin,dimm_pin",
    REFERENCE_EXPERIMENTS,
    ids=["observed-" + "-".join(map(str, e[0])) for e in REFERENCE_EXPERIMENTS],
)
def test_observed_run_matches_pinned_experiments(
    point, expected_time, expected_records, energy_pin, dimm_pin
):
    """An attached Observer (span tracer + metrics + counted kernel)
    must leave every golden number untouched — the observability layer's
    read-only guarantee, pinned against the seed engine."""
    from repro.obs import ObsConfig, Observer

    workload, size, tier = point
    observer = Observer(ObsConfig())
    result = run_experiment(
        ExperimentConfig(workload=workload, size=size, tier=tier),
        observer=observer,
    )
    _assert_matches_pins(result, expected_time, expected_records, energy_pin, dimm_pin)

    # Cross-check the trace against the engine's own ledger: exactly one
    # task span per attempt, and the experiment span covers the run.
    tracer = observer.tracer
    assert len(tracer.by_category("task")) == result.mitigation["task_attempts"]
    root = tracer.root()
    assert root.cat == "experiment"
    for span in tracer.spans:
        assert span.end is not None and span.begin <= span.end
    assert observer.registry.gauge("experiment.execution_time") == (
        result.execution_time
    )
    assert observer.registry.counter("scheduler.attempts_launched") == (
        result.mitigation["task_attempts"]
    )


# ------------------------------------------------- batched vs naive properties

#: Mixed-type keys exercise the generic fallback; long homogeneous
#: lists exercise every specialized batch path.
mixed_keys = st.lists(
    st.one_of(
        st.integers(-1000, 1000),
        st.booleans(),
        st.text(max_size=8),
        st.binary(max_size=8),
        st.tuples(st.integers(0, 50), st.text(max_size=4)),
    ),
    max_size=40,
)
homogeneous_keys = st.one_of(
    st.lists(st.integers(-1000, 1000), min_size=9, max_size=40),
    st.lists(st.text(max_size=8), min_size=9, max_size=40),
    st.lists(st.binary(max_size=8), min_size=9, max_size=40),
)
partitions = st.integers(min_value=1, max_value=7)


@given(keys=st.one_of(mixed_keys, homogeneous_keys), parts=partitions)
@SETTINGS
def test_hash_partition_all_matches_per_key(keys, parts):
    partitioner = HashPartitioner(parts)
    assert partitioner.partition_all(keys) == [
        partitioner.partition(key) for key in keys
    ]


@given(
    keys=st.lists(st.integers(-1000, 1000), max_size=40),
    sample=st.lists(st.integers(-1000, 1000), min_size=1, max_size=30),
    parts=partitions,
)
@SETTINGS
def test_range_partition_all_matches_per_key(keys, sample, parts):
    partitioner = RangePartitioner.from_sample(parts, sample)
    assert partitioner.partition_all(keys) == [
        partitioner.partition(key) for key in keys
    ]
    mirrored = ReversedPartitioner(partitioner)
    assert mirrored.partition_all(keys) == [
        mirrored.partition(key) for key in keys
    ]


@given(n=st.integers(0, 40), record_len=st.integers(1, 24), seed=st.integers(0, 99))
@SETTINGS
def test_random_text_records_matches_naive(n, record_len, seed):
    assert datagen.random_text_records(
        n, record_len, seed=seed
    ) == datagen._naive_random_text_records(n, record_len, seed=seed)


@given(n=st.integers(0, 200), vocabulary=st.integers(1, 50), seed=st.integers(0, 99))
@SETTINGS
def test_zipf_words_matches_naive(n, vocabulary, seed):
    datagen.clear_cache()
    assert datagen.zipf_words(
        n, vocabulary, seed=seed
    ) == datagen._naive_zipf_words(n, vocabulary, seed=seed)


@given(
    n_docs=st.integers(1, 8),
    vocabulary=st.integers(2, 30),
    n_topics=st.integers(1, 5),
    seed=st.integers(0, 99),
)
@SETTINGS
def test_bag_of_words_matches_naive(n_docs, vocabulary, n_topics, seed):
    datagen.clear_cache()
    assert datagen.bag_of_words_docs(
        n_docs, vocabulary, n_topics, words_per_doc=12, seed=seed
    ) == datagen._naive_bag_of_words_docs(
        n_docs, vocabulary, n_topics, words_per_doc=12, seed=seed
    )


@given(n_pages=st.integers(1, 40), seed=st.integers(0, 99))
@SETTINGS
def test_web_graph_matches_naive(n_pages, seed):
    datagen.clear_cache()
    assert datagen.web_graph(n_pages, seed=seed) == datagen._naive_web_graph(
        n_pages, seed=seed
    )


def test_datagen_memoization_returns_fresh_lists():
    datagen.clear_cache()
    first = datagen.zipf_words(50, 20, seed=5)
    second = datagen.zipf_words(50, 20, seed=5)
    assert first == second
    assert first is not second  # callers may mutate their copy safely
    second.append("sentinel")
    assert datagen.zipf_words(50, 20, seed=5) == first


# ----------------------------------------------------------- sizeof equivalence

def _full_recursion_sizeof(value) -> float:
    """The unoptimized (uncapped) sizeof recursion, for comparison."""
    if isinstance(value, (tuple, list)):
        return 56.0 + 8.0 * len(value) + sum(
            _full_recursion_sizeof(v) for v in value
        )
    return sizeof_value(value)


@given(
    values=st.lists(
        st.one_of(st.integers(-10, 10), st.floats(allow_nan=False, width=32)),
        min_size=SAMPLE_SIZE + 1,
        max_size=3 * SAMPLE_SIZE,
    )
)
@SETTINGS
def test_sizeof_homogeneous_primitive_cap_is_exact(values):
    """Large int/float containers use a closed form equal to full recursion."""
    assert sizeof_value(values) == _full_recursion_sizeof(values)
    assert sizeof_value(tuple(values)) == _full_recursion_sizeof(values)


def test_sizeof_nested_recursion_is_capped():
    """Deep sampling keeps huge heterogeneous containers cheap but sane."""
    big = [("word", float(i), [i] * 4) for i in range(100_000)]
    estimate = sizeof_value(big)
    per_record = sizeof_value(big[0])
    assert estimate == pytest.approx(
        56.0 + 8.0 * len(big) + per_record * len(big), rel=0.2
    )
