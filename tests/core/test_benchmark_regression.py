"""Benchmark regression: the paper's Fig. 2 tier ordering is pinned.

The headline result — execution time strictly ordered DRAM-local <
DRAM-remote < NVM-local < NVM-remote — must survive every refactor, and
with fault injection disabled the engine must reproduce the recorded
reference times bit-for-bit (the determinism contract makes exact
comparison meaningful).
"""

from __future__ import annotations

import operator

import pytest

from repro.faults import FaultConfig
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext

#: Reference times for the probe workload below, recorded from the seed
#: engine.  Regenerate only for a deliberate, explained model change.
REFERENCE_TIMES = {
    0: 0.022254707870039685,  # DRAM local
    1: 0.04800105980753969,   # DRAM remote
    2: 0.07651172940592738,   # NVM local
    3: 0.4049943306244574,    # NVM remote
}


def probe_time(tier: int, faults: FaultConfig | None = None) -> float:
    conf = SparkConf(
        memory_tier=tier,
        num_executors=2,
        executor_cores=4,
        default_parallelism=8,
        faults=faults,
    )
    sc = SparkContext(conf=conf)
    (
        sc.parallelize(range(2000), 8)
        .map(lambda x: (x % 50, x))
        .reduce_by_key(operator.add)
        .collect()
    )
    elapsed = sc.total_job_time()
    sc.stop()
    return elapsed


@pytest.fixture(scope="module")
def clean_times():
    return {tier: probe_time(tier) for tier in REFERENCE_TIMES}


def test_fig2_tier_ordering(clean_times):
    assert (
        clean_times[0] < clean_times[1] < clean_times[2] < clean_times[3]
    ), clean_times


def test_fig2_reference_times_exact(clean_times):
    for tier, reference in REFERENCE_TIMES.items():
        assert clean_times[tier] == pytest.approx(reference, rel=1e-12), tier


def test_fig2_ordering_survives_fault_injection(clean_times):
    """Mild crash injection adds retry time but must not reorder tiers —
    the gaps the paper measures dwarf the mitigation overhead."""
    faulty = {
        tier: probe_time(tier, FaultConfig(seed=7, task_crash_prob=0.15))
        for tier in REFERENCE_TIMES
    }
    assert faulty[0] < faulty[1] < faulty[2] < faulty[3], faulty
    for tier in REFERENCE_TIMES:
        assert faulty[tier] >= clean_times[tier]
