"""Flight recorder: ring bounds, drop accounting, atomic dumps, loading."""

import json

import pytest

from repro.obs import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    OBS_SCHEMA_VERSION,
    load_flight_dump,
)


def test_ring_keeps_only_last_depth_events_and_counts_drops():
    recorder = FlightRecorder(depth=3)
    for i in range(5):
        recorder.record("job-1", {"seq": i})
    assert [e["seq"] for e in recorder.events("job-1")] == [2, 3, 4]
    assert recorder.dropped("job-1") == 2
    assert recorder.keys == ["job-1"]


def test_keys_are_independent():
    recorder = FlightRecorder(depth=2)
    recorder.record("a", {"x": 1})
    recorder.record("b", {"x": 2})
    assert recorder.events("a") == [{"x": 1}]
    recorder.discard("a")
    assert recorder.events("a") == []
    assert recorder.keys == ["b"]


def test_depth_must_be_positive():
    with pytest.raises(ValueError, match="depth"):
        FlightRecorder(depth=0)


def test_dump_without_directory_returns_none():
    recorder = FlightRecorder()
    recorder.record("k", {"x": 1})
    assert recorder.dump("k", reason="failed") is None


def test_dump_writes_loadable_schema_versioned_artifact(tmp_path):
    recorder = FlightRecorder(tmp_path, depth=4)
    for i in range(6):
        recorder.record("job-7", {"seq": i, "kind": "progress"})
    path = recorder.dump(
        "job-7",
        reason="failed",
        label="tier2 · pagerank",
        metrics={"counters": {"service.failed": 1.0}},
        spans=[{"name": "job-7", "duration": 1.5}],
        log_tail=[{"event": "job.failed"}],
    )
    assert path is not None and path.name == "flight-job-7.json"
    payload = load_flight_dump(path)
    assert payload["schema"] == FLIGHT_SCHEMA
    assert payload["version"] == OBS_SCHEMA_VERSION
    assert payload["key"] == "job-7"
    assert payload["reason"] == "failed"
    assert payload["label"] == "tier2 · pagerank"
    assert payload["depth"] == 4 and payload["dropped"] == 2
    assert [e["seq"] for e in payload["events"]] == [2, 3, 4, 5]
    assert payload["metrics"]["counters"]["service.failed"] == 1.0
    assert payload["spans"][0]["name"] == "job-7"
    assert payload["log_tail"][0]["event"] == "job.failed"
    # Atomic write: no temp sibling survives.
    assert list(tmp_path.glob("*.tmp")) == []


def test_dump_sanitizes_hostile_keys(tmp_path):
    recorder = FlightRecorder(tmp_path)
    recorder.record("../../etc/passwd", {"x": 1})
    path = recorder.dump("../../etc/passwd", reason="failed")
    assert path.parent == tmp_path
    assert "/" not in path.name.replace("flight-", "", 1)


def test_dump_directory_override(tmp_path):
    recorder = FlightRecorder()
    recorder.record("k", {"x": 1})
    path = recorder.dump("k", reason="cancelled", directory=tmp_path / "sub")
    assert path is not None and path.parent == tmp_path / "sub"


def test_load_rejects_foreign_or_truncated_files(tmp_path):
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"schema": "something.else"}))
    with pytest.raises(ValueError, match="not a repro.obs.flight"):
        load_flight_dump(foreign)
    missing_events = tmp_path / "noevents.json"
    missing_events.write_text(json.dumps({"schema": FLIGHT_SCHEMA}))
    with pytest.raises(ValueError, match="missing events"):
        load_flight_dump(missing_events)
