"""QuantileSketch: bucketing, exact merge, quantile error, round-trip."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import QuantileSketch
from repro.obs.sketch import GAMMA, bucket_index, bucket_upper

SETTINGS = settings(max_examples=50, deadline=None)

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
positive = st.floats(min_value=1e-9, max_value=1e12, allow_nan=False)

#: Worst-case relative error of one bucket's representative point.
REL_ERROR = (GAMMA - 1.0) / (GAMMA + 1.0)


def test_empty_sketch_reads_as_zero():
    sketch = QuantileSketch()
    assert sketch.count == 0
    assert sketch.mean == 0.0
    assert sketch.quantile(0.5) == 0.0
    assert sketch.cumulative() == []


def test_exact_statistics_track_every_value():
    sketch = QuantileSketch.of([3.0, -1.0, 0.0, 7.5])
    assert sketch.count == 4
    assert sketch.sum == 9.5
    assert sketch.min == -1.0 and sketch.max == 7.5
    assert sketch.zeros == 1
    assert sketch.mean == 9.5 / 4


@given(value=positive)
@SETTINGS
def test_bucket_contains_its_value(value):
    index = bucket_index(value)
    # Bucket i covers (gamma**(i-1), gamma**i]; allow boundary slop on
    # the closed upper edge (the index snap handles exact powers).
    assert value <= bucket_upper(index) * (1.0 + 1e-9)
    assert value > bucket_upper(index - 1) * (1.0 - 1e-9)


def test_boundary_values_snap_deterministically():
    for i in (-3, 0, 1, 8, 40):
        assert bucket_index(GAMMA**i) == i


@given(values=st.lists(finite, min_size=1, max_size=50))
@SETTINGS
def test_quantiles_stay_inside_observed_range(values):
    sketch = QuantileSketch.of(values)
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert min(values) <= sketch.quantile(q) <= max(values)


@given(values=st.lists(positive, min_size=1, max_size=60), q=st.floats(0, 1))
@SETTINGS
def test_quantile_relative_error_is_bounded(values, q):
    sketch = QuantileSketch.of(values)
    rank = max(1, math.ceil(q * len(values)))
    exact = sorted(values)[rank - 1]
    estimate = sketch.quantile(q)
    assert abs(estimate - exact) <= exact * (REL_ERROR + 1e-9)


# Integer-valued observations keep float sums exact (well under 2**53),
# so the shard-merge identity is bit-for-bit, not approximate.
exact_values = st.integers(-(10**12), 10**12).map(float)


@given(
    shards=st.lists(
        st.lists(exact_values, max_size=20), min_size=1, max_size=5
    )
)
@SETTINGS
def test_merge_of_shards_equals_sketch_fed_union(shards):
    """The exact-merge pin: shard merge ≡ one sketch fed everything."""
    union = QuantileSketch.of(v for shard in shards for v in shard)
    merged = QuantileSketch()
    for shard in shards:
        merged.merge(QuantileSketch.of(shard))
    assert merged == union
    assert merged.to_dict() == union.to_dict()


@given(values=st.lists(finite, max_size=40))
@SETTINGS
def test_roundtrip_through_dict(values):
    sketch = QuantileSketch.of(values)
    rebuilt = QuantileSketch.from_dict(sketch.to_dict())
    assert rebuilt == sketch
    assert rebuilt.to_dict() == sketch.to_dict()


@given(values=st.lists(finite, min_size=1, max_size=40))
@SETTINGS
def test_cumulative_is_monotone_and_ends_at_count(values):
    sketch = QuantileSketch.of(values)
    pairs = sketch.cumulative()
    uppers = [upper for upper, _ in pairs]
    counts = [count for _, count in pairs]
    assert uppers == sorted(uppers)
    assert counts == sorted(counts)
    assert counts[-1] == sketch.count


def test_quantile_rejects_out_of_range():
    with pytest.raises(ValueError, match="quantile"):
        QuantileSketch.of([1.0]).quantile(1.5)
