"""MetricsRegistry: instruments, merge/reset, schema round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import METRICS_SCHEMA, OBS_SCHEMA_VERSION, MetricsRegistry

SETTINGS = settings(max_examples=50, deadline=None)

names = st.text(
    st.characters(whitelist_categories=("Ll",), whitelist_characters="._"),
    min_size=1,
    max_size=12,
)
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)


def test_counters_accumulate_and_default_to_zero():
    registry = MetricsRegistry()
    assert registry.counter("missing") == 0.0
    assert registry.inc("a") == 1.0
    assert registry.inc("a", 2.5) == 3.5
    assert registry.counter("a") == 3.5


def test_gauges_overwrite():
    registry = MetricsRegistry()
    registry.set_gauge("g", 1.0)
    registry.set_gauge("g", -2.0)
    assert registry.gauge("g") == -2.0
    assert registry.gauge("missing") is None


def test_histogram_summary_statistics():
    registry = MetricsRegistry()
    for value in (1.0, 2.0, 6.0):
        registry.observe("h", value)
    summary = registry.histogram("h")
    assert summary.count == 3
    assert summary.sum == 9.0
    assert summary.min == 1.0 and summary.max == 6.0
    assert summary.mean == 3.0
    sketch = registry.sketch("h")
    assert sketch is not None and sketch.count == 3
    empty = registry.histogram("missing")
    assert empty.count == 0 and empty.mean == 0.0


def test_inc_many_prefixes():
    registry = MetricsRegistry()
    registry.inc_many({"x": 1, "y": 2}, prefix="job.")
    assert registry.counter("job.x") == 1.0
    assert registry.counter("job.y") == 2.0
    assert registry.names == ["job.x", "job.y"]


def test_reset_clears_everything():
    registry = MetricsRegistry()
    registry.inc("c")
    registry.set_gauge("g", 1.0)
    registry.observe("h", 2.0)
    registry.reset()
    assert registry.names == []
    assert registry.counter("c") == 0.0
    assert registry.gauge("g") is None
    assert registry.histogram("h").count == 0


def test_merge_sums_counters_overwrites_gauges_concats_histograms():
    left = MetricsRegistry()
    left.inc("c", 2.0)
    left.set_gauge("g", 1.0)
    left.observe("h", 1.0)
    right = MetricsRegistry()
    right.inc("c", 3.0)
    right.inc("only_right")
    right.set_gauge("g", 9.0)
    right.observe("h", 2.0)
    merged = left.merge(right)
    assert merged is left
    assert left.counter("c") == 5.0
    assert left.counter("only_right") == 1.0
    assert left.gauge("g") == 9.0
    merged_h = left.histogram("h")
    assert merged_h.count == 2 and merged_h.sum == 3.0
    assert merged_h.min == 1.0 and merged_h.max == 2.0


def test_to_dict_is_schema_versioned_and_sorted():
    registry = MetricsRegistry()
    registry.inc("b")
    registry.inc("a")
    payload = registry.to_dict()
    assert payload["schema"] == METRICS_SCHEMA
    assert payload["version"] == OBS_SCHEMA_VERSION
    assert list(payload["counters"]) == ["a", "b"]


def test_from_dict_rejects_foreign_schema():
    with pytest.raises(ValueError, match="not a repro.obs.metrics"):
        MetricsRegistry.from_dict({"schema": "something.else"})


@given(
    counters=st.dictionaries(names, finite, max_size=8),
    gauges=st.dictionaries(names, finite, max_size=8),
    hists=st.dictionaries(
        names, st.lists(finite, min_size=1, max_size=6), max_size=4
    ),
)
@SETTINGS
def test_roundtrip_through_dict(counters, gauges, hists):
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.inc(name, value)
    for name, value in gauges.items():
        registry.set_gauge(name, value)
    for name, values in hists.items():
        for value in values:
            registry.observe(name, value)
    rebuilt = MetricsRegistry.from_dict(registry.to_dict())
    assert rebuilt.to_dict() == registry.to_dict()


@given(
    a=st.dictionaries(names, st.floats(-100, 100), max_size=6),
    b=st.dictionaries(names, st.floats(-100, 100), max_size=6),
)
@SETTINGS
def test_merge_counters_is_addition(a, b):
    left = MetricsRegistry()
    left.inc_many(a)
    right = MetricsRegistry()
    right.inc_many(b)
    left.merge(right)
    for name in set(a) | set(b):
        assert left.counter(name) == pytest.approx(
            a.get(name, 0.0) + b.get(name, 0.0)
        )


# One observation destined for a named (optionally labeled) series.
# Integer-valued floats keep additions exact, so shard-merge equality
# is bit-for-bit rather than approximate.
observation = st.tuples(
    names,
    st.one_of(st.none(), st.dictionaries(names, names, max_size=2)),
    st.integers(-10_000, 10_000).map(float),
)


@given(
    shards=st.lists(
        st.lists(observation, max_size=8), min_size=1, max_size=4
    )
)
@SETTINGS
def test_merged_shards_equal_single_registry_fed_union(shards):
    """Merging per-shard registries is exact: ≡ one registry fed everything.

    Pins the tentpole invariant for counters, histogram sketches, and
    labeled series alike.  (Gauges are last-writer-wins, so only the
    final shard's value survives either way.)
    """
    union = MetricsRegistry()
    merged = MetricsRegistry()
    for shard_obs in shards:
        shard = MetricsRegistry()
        for name, labels, value in shard_obs:
            union.inc(name, value, labels=labels)
            union.observe(name, value, labels=labels)
            shard.inc(name, value, labels=labels)
            shard.observe(name, value, labels=labels)
        merged.merge(shard)
    assert merged.to_dict() == union.to_dict()


@given(values=st.lists(st.floats(-1e9, 1e9, allow_nan=False), min_size=1))
@SETTINGS
def test_histogram_quantiles_are_order_statistics_up_to_sketch_error(values):
    registry = MetricsRegistry()
    for value in values:
        registry.observe("h", value)
    summary = registry.histogram("h")
    assert summary.count == len(values)
    assert summary.min == min(values) and summary.max == max(values)
    for q in (summary.p50, summary.p90, summary.p99):
        assert summary.min <= q <= summary.max


def test_labeled_series_are_distinct_and_exported():
    registry = MetricsRegistry()
    registry.inc("device.media_reads", 2.0, labels={"tier": "0", "dev": "a"})
    registry.inc("device.media_reads", 5.0, labels={"tier": "2", "dev": "b"})
    assert registry.counter(
        "device.media_reads", labels={"tier": "0", "dev": "a"}
    ) == 2.0
    assert registry.counter("device.media_reads") == 0.0
    payload = registry.to_dict()
    labeled = [k for k in payload["counters"] if "{" in k]
    assert len(labeled) == 2
    rebuilt = MetricsRegistry.from_dict(payload)
    assert rebuilt.to_dict() == payload


def test_from_dict_accepts_legacy_sample_payloads():
    legacy = {
        "schema": METRICS_SCHEMA,
        "version": 1,
        "counters": {},
        "gauges": {},
        "samples": {"h": [1.0, 2.0, 6.0]},
    }
    rebuilt = MetricsRegistry.from_dict(legacy)
    summary = rebuilt.histogram("h")
    assert summary.count == 3 and summary.sum == 9.0
