"""Observability must never perturb the simulation.

With an Observer attached, every simulated output — execution time,
telemetry counters, energy — must be bit-identical to the unobserved
run.  These tests are the contract behind the "zero overhead when
disabled" claim: hooks only read state, never schedule events.
"""

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.faults.config import FaultConfig
from repro.obs import MetricsRegistry, ObsConfig, Observer, coerce_observer
from repro.obs.simhooks import ObservedEnvironment
from repro.sim.core import Environment


def run_pair(**overrides):
    config = ExperimentConfig(
        workload="sort", size="tiny", tier=2, **overrides
    )
    plain = run_experiment(config)
    observer = Observer(ObsConfig())
    observed = run_experiment(config, observer=observer)
    return plain, observed, observer


def assert_identical(plain, observed):
    assert observed.execution_time == plain.execution_time
    assert observed.records_processed == plain.records_processed
    assert observed.telemetry.events == plain.telemetry.events
    assert observed.telemetry.energy == plain.telemetry.energy
    assert {d.dimm_id: (d.bytes_read, d.bytes_written)
            for d in observed.telemetry.dimm_performance} == {
        d.dimm_id: (d.bytes_read, d.bytes_written)
        for d in plain.telemetry.dimm_performance
    }


def test_observed_run_is_bit_identical():
    plain, observed, observer = run_pair()
    assert_identical(plain, observed)
    # ... and the observer actually saw the run.
    assert observer.tracer.by_category("task")
    assert observer.registry.counter("scheduler.attempts_launched") > 0


def test_observed_run_with_faults_and_speculation_is_bit_identical():
    overrides = dict(
        faults=FaultConfig(
            seed=7,
            task_crash_prob=0.2,
            executor_loss_prob=0.3,
            fetch_fail_prob=0.2,
            straggler_prob=0.4,
        ),
        speculation=True,
    )
    plain, observed, observer = run_pair(**overrides)
    assert_identical(plain, observed)
    assert observed.mitigation == plain.mitigation
    # Injected faults surfaced as metrics without changing outcomes:
    # faults.* counters agree with the engine's own mitigation ledger.
    assert observed.mitigation["task_attempts"] > 0
    assert (
        observer.registry.counter("faults.fetch_failures")
        == observed.mitigation["fetch_failures"]
    )


def test_observed_environment_is_value_identical_to_plain():
    def probe(env):
        order = []
        for name, delay in (("b", 2.0), ("a", 1.0), ("tie", 1.0)):
            event = env.timeout(delay)
            event.callbacks.append(
                lambda _ev, name=name: order.append((name, env.now))
            )
        env.run()
        return order, env.now

    plain = probe(Environment())
    registry = MetricsRegistry()
    observed = probe(ObservedEnvironment(registry))
    assert observed == plain
    assert registry.counter("sim.events_scheduled") == 3.0
    assert registry.counter("sim.events_processed") == 3.0
    assert registry.gauge("sim.final_time") == 2.0


def test_coerce_observer_forms():
    assert coerce_observer(None) is None
    assert coerce_observer(False) is None
    assert isinstance(coerce_observer(True), Observer)
    config = ObsConfig(timeline=True)
    assert coerce_observer(config).config is config
    observer = Observer(ObsConfig())
    assert coerce_observer(observer) is observer


def test_observer_reset_clears_previous_run():
    observer = Observer(ObsConfig())
    config = ExperimentConfig(workload="sort", size="tiny", tier=0)
    run_experiment(config, observer=observer)
    assert observer.tracer.spans
    observer.reset()
    assert not observer.tracer.spans
    assert observer.registry.names == []
