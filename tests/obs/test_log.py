"""Structured JSON log: bind correlation, sinks, tail, global config."""

import io
import json

import pytest

from repro.obs import StructuredLog, read_log
from repro.obs.log import (
    LOG_PATH_ENV,
    configure,
    get_log,
    reset,
    stderr_log,
)


@pytest.fixture(autouse=True)
def _isolated_global_log(monkeypatch):
    monkeypatch.delenv(LOG_PATH_ENV, raising=False)
    reset()
    yield
    reset()


def test_records_carry_ts_level_event_and_fields():
    log = StructuredLog()
    record = log.info("job.start", job="j-1", tier=2)
    assert record["event"] == "job.start"
    assert record["level"] == "info"
    assert record["job"] == "j-1" and record["tier"] == 2
    assert isinstance(record["ts"], float)


def test_bound_children_share_tail_and_stack_fields():
    root = StructuredLog()
    svc = root.bind(component="service")
    job = svc.bind(job="j-9")
    job.info("job.done")
    svc.warning("service.drain")
    # One shared tail, in emission order, each with its bound fields.
    events = root.tail()
    assert [e["event"] for e in events] == ["job.done", "service.drain"]
    assert events[0]["component"] == "service" and events[0]["job"] == "j-9"
    assert "job" not in events[1]


def test_call_fields_override_bound_fields():
    log = StructuredLog().bind(phase="a")
    record = log.info("x", phase="b")
    assert record["phase"] == "b"


def test_stream_sink_writes_sorted_json_lines():
    stream = io.StringIO()
    log = StructuredLog(stream=stream)
    log.error("boom", job="j-1")
    line = stream.getvalue().strip()
    record = json.loads(line)
    assert record["event"] == "boom" and record["level"] == "error"
    assert list(record) == sorted(record)


def test_file_sink_appends_and_read_log_roundtrips(tmp_path):
    path = tmp_path / "events.jsonl"
    log = StructuredLog(path)
    log.info("first")
    log.close()
    again = StructuredLog(path)
    again.info("second", job="j-2")
    again.close()
    records = read_log(path)
    assert [r["event"] for r in records] == ["first", "second"]
    assert records[1]["job"] == "j-2"


def test_read_log_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ValueError, match="bad log line"):
        read_log(path)
    path.write_text("[1, 2]\n")
    with pytest.raises(ValueError, match="not an object"):
        read_log(path)


def test_tail_is_bounded_and_limitable():
    log = StructuredLog(tail=3)
    for i in range(5):
        log.info(f"e{i}")
    assert [e["event"] for e in log.tail()] == ["e2", "e3", "e4"]
    assert [e["event"] for e in log.tail(limit=1)] == ["e4"]


def test_unknown_level_is_rejected():
    with pytest.raises(ValueError, match="unknown log level"):
        StructuredLog().write("x", level="fatal")


def test_get_log_without_env_is_memory_only():
    log = get_log()
    log.info("quiet")
    assert log.path is None
    assert log.tail()[-1]["event"] == "quiet"


def test_get_log_picks_up_env_path(tmp_path, monkeypatch):
    path = tmp_path / "svc.jsonl"
    monkeypatch.setenv(LOG_PATH_ENV, str(path))
    reset()
    get_log().info("from-env")
    get_log().close()
    assert read_log(path)[0]["event"] == "from-env"


def test_configure_exports_env_for_workers(tmp_path, monkeypatch):
    path = tmp_path / "svc.jsonl"
    import os

    configure(path)
    assert os.environ[LOG_PATH_ENV] == str(path)
    get_log().info("parent")
    configure(None)
    assert LOG_PATH_ENV not in os.environ
    assert read_log(path)[0]["event"] == "parent"


def test_stderr_log_targets_stderr():
    import sys

    assert stderr_log()._stream is sys.stderr
