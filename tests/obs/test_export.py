"""Exporters: Chrome-trace schema golden, merging, metrics files, timeline."""

import json

from repro.obs import (
    OBS_SCHEMA_VERSION,
    TRACE_SCHEMA,
    MetricsRegistry,
    Tracer,
    build_trace_events,
    export_chrome_trace,
    export_metrics_json,
    format_stage_timeline,
    load_metrics_json,
    merge_chrome_traces,
    trace_payload,
)


class ManualClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def small_tracer() -> Tracer:
    """A hand-built run: stage with two overlapping task attempts."""
    clock = ManualClock()
    tracer = Tracer(clock)
    stage = tracer.begin("stage0", cat="stage", stage_id=0)
    tracer.emit(
        "stage0/p0", cat="task", begin=0.0, end=2.0,
        parent=stage, track="executor-0", tier=2,
    )
    task = tracer.emit(
        "stage0/p1", cat="task", begin=0.5, end=1.5,
        parent=stage, track="executor-0", tier=2,
    )
    tracer.emit(
        "compute", cat="phase", begin=0.75, end=1.25,
        parent=task, track="executor-0",
    )
    tracer.instant("fetch-failure", time=1.0, track="executor-0")
    tracer.sample("numa2-nvm4", {"bytes_read": 7.0}, time=2.0)
    clock.t = 2.0
    tracer.end(stage)
    return tracer


#: The exact Chrome trace-event document for ``small_tracer()``.  This
#: is the exporter's public contract (Perfetto/chrome://tracing load
#: it); regenerate only for a deliberate schema change, bumping
#: OBS_SCHEMA_VERSION.
GOLDEN_EVENTS = [
    {
        "name": "stage0", "cat": "stage", "ph": "X",
        "ts": 0.0, "dur": 2_000_000.0, "pid": 0, "tid": 0,
        "args": {"span_id": 0, "parent_id": None, "stage_id": 0},
    },
    {
        "name": "stage0/p0", "cat": "task", "ph": "X",
        "ts": 0.0, "dur": 2_000_000.0, "pid": 1, "tid": 0,
        "args": {"span_id": 1, "parent_id": 0, "tier": 2},
    },
    {
        "name": "stage0/p1", "cat": "task", "ph": "X",
        "ts": 500_000.0, "dur": 1_000_000.0, "pid": 1, "tid": 1,
        "args": {"span_id": 2, "parent_id": 0, "tier": 2},
    },
    {
        "name": "compute", "cat": "phase", "ph": "X",
        "ts": 750_000.0, "dur": 500_000.0, "pid": 1, "tid": 1,
        "args": {"span_id": 3, "parent_id": 2},
    },
    {
        "name": "fetch-failure", "cat": "marker", "ph": "i", "s": "p",
        "ts": 1_000_000.0, "pid": 1, "tid": 0, "args": {},
    },
    {
        "name": "numa2-nvm4", "cat": "counter", "ph": "C",
        "ts": 2_000_000.0, "pid": 2, "args": {"bytes_read": 7.0},
    },
    {
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": "driver", "sort_index": 0},
    },
    {
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": "executor-0", "sort_index": 1},
    },
    {
        "name": "process_name", "ph": "M", "pid": 2,
        "args": {"name": "device numa2-nvm4", "sort_index": 2},
    },
]


def test_chrome_trace_events_match_golden():
    assert build_trace_events(small_tracer()) == GOLDEN_EVENTS


def test_trace_payload_header():
    payload = trace_payload(small_tracer(), label="golden")
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"] == {
        "schema": TRACE_SCHEMA,
        "version": OBS_SCHEMA_VERSION,
        "label": "golden",
        "clock": "simulated-seconds",
    }


def test_export_chrome_trace_writes_json_and_counts_spans(tmp_path):
    path = tmp_path / "nested" / "trace.json"
    n = export_chrome_trace(small_tracer(), path, label="x")
    assert n == 4  # 4 "X" span events
    payload = json.loads(path.read_text())
    assert payload["traceEvents"] == GOLDEN_EVENTS


def test_overlapping_tasks_get_distinct_lanes_sequential_share():
    tracer = Tracer()
    tracer.emit("a", cat="task", begin=0.0, end=1.0, track="executor-0")
    tracer.emit("b", cat="task", begin=0.5, end=1.5, track="executor-0")
    tracer.emit("c", cat="task", begin=2.0, end=3.0, track="executor-0")
    tids = {
        e["name"]: e["tid"]
        for e in build_trace_events(tracer)
        if e.get("ph") == "X"
    }
    assert tids["a"] != tids["b"]  # concurrent: separate lanes
    assert tids["c"] == tids["a"]  # sequential: first lane is free again


def test_merge_chrome_traces_offsets_pids_and_skips_missing(tmp_path):
    part1 = tmp_path / "p1.json"
    part2 = tmp_path / "p2.json"
    export_chrome_trace(small_tracer(), part1)
    export_chrome_trace(small_tracer(), part2)
    merged_path = tmp_path / "merged.json"
    n = merge_chrome_traces(
        [
            ("tier0", part1),
            ("gone", tmp_path / "missing.json"),
            ("tier2", part2),
        ],
        merged_path,
    )
    assert n == 2
    payload = json.loads(merged_path.read_text())
    assert payload["otherData"]["points"] == 2
    names = [
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    ]
    assert "tier0 · driver" in names and "tier2 · driver" in names
    # The two points occupy disjoint pid ranges.
    pids_of = lambda label: {
        e["pid"]
        for e in payload["traceEvents"]
        if e.get("ph") == "M" and e["args"]["name"].startswith(label)
    }
    assert pids_of("tier0") and pids_of("tier0").isdisjoint(pids_of("tier2"))


def test_metrics_json_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.inc("shuffle.bytes_written", 42.0)
    registry.set_gauge("experiment.execution_time", 1.5)
    registry.observe("h", 3.0)
    path = tmp_path / "metrics.json"
    export_metrics_json(registry, path, extra={"label": "run-1"})
    payload = json.loads(path.read_text())
    assert payload["run"] == {"label": "run-1"}
    rebuilt = load_metrics_json(path)
    assert rebuilt.counter("shuffle.bytes_written") == 42.0
    assert rebuilt.gauge("experiment.execution_time") == 1.5
    assert rebuilt.histogram("h").count == 1
    assert rebuilt.histogram("h").sum == 3.0


def test_stage_timeline_renders_bars_and_attempt_counts():
    text = format_stage_timeline(small_tracer(), width=20)
    lines = text.splitlines()
    assert "2.000000s simulated" in lines[0]
    assert "stage0" in lines[1]
    assert "#" in lines[1]
    assert "2 attempts" in lines[1]


def test_stage_timeline_without_stages():
    assert "no stage spans" in format_stage_timeline(Tracer())
