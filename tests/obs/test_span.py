"""Tracer/span semantics: nesting, clock stamping, retrospective emits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Span, Tracer

SETTINGS = settings(max_examples=50, deadline=None)


class FakeClock:
    """A monotone clock the tests advance by hand."""

    def __init__(self) -> None:
        self.t = 0.0

    def tick(self, dt: float = 1.0) -> float:
        self.t += dt
        return self.t

    def __call__(self) -> float:
        return self.t


def make_tracer() -> tuple[Tracer, FakeClock]:
    clock = FakeClock()
    tracer = Tracer(clock)
    return tracer, clock


# ------------------------------------------------------------------ stack spans
def test_begin_end_stamps_clock_and_links_parent():
    tracer, clock = make_tracer()
    outer = tracer.begin("experiment", cat="experiment")
    clock.tick(2.0)
    inner = tracer.begin("job", cat="job")
    assert inner.parent_id == outer.span_id
    assert inner.begin == 2.0
    clock.tick(3.0)
    tracer.end(inner)
    tracer.end(outer)
    assert inner.end == 5.0
    assert outer.begin == 0.0 and outer.end == 5.0
    assert not outer.open and outer.duration == 5.0


def test_end_without_open_span_raises():
    tracer, _ = make_tracer()
    with pytest.raises(RuntimeError):
        tracer.end()


def test_end_out_of_order_raises():
    tracer, _ = make_tracer()
    outer = tracer.begin("outer")
    tracer.begin("inner")
    with pytest.raises(RuntimeError, match="nesting violation"):
        tracer.end(outer)


def test_span_context_manager_closes_on_exception():
    tracer, clock = make_tracer()
    with pytest.raises(ValueError):
        with tracer.span("work"):
            clock.tick()
            raise ValueError("boom")
    (span,) = tracer.spans
    assert span.end == 1.0


def test_span_context_manager_unwinds_abandoned_children_on_exception():
    # An error escaping from deep inside the scheduler leaves job/stage
    # spans open; the enclosing span() must close them and re-raise the
    # ORIGINAL exception, not a nesting violation that masks it.
    tracer, clock = make_tracer()
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("measure"):
            tracer.begin("job", cat="job")
            tracer.begin("stage", cat="stage")
            clock.tick(4.0)
            raise ValueError("boom")
    assert tracer.current is None
    assert [span.name for span in tracer.spans] == ["measure", "job", "stage"]
    assert all(span.end == 4.0 for span in tracer.spans)


def test_unwind_to_ignores_foreign_spans():
    tracer, _ = make_tracer()
    closed = tracer.begin("a")
    tracer.end(closed)
    open_span = tracer.begin("b")
    tracer.unwind_to(closed)  # not on the stack: no-op
    assert tracer.current is open_span


def test_finish_closes_all_open_spans_at_current_clock():
    tracer, clock = make_tracer()
    tracer.begin("a")
    tracer.begin("b")
    clock.tick(7.0)
    tracer.finish()
    assert tracer.current is None
    assert all(span.end == 7.0 for span in tracer.spans)


# ------------------------------------------------------------- emitted spans
def test_emit_defaults_parent_to_open_stack_span():
    tracer, _ = make_tracer()
    stage = tracer.begin("stage", cat="stage")
    task = tracer.emit("task", cat="task", begin=1.0, end=2.0)
    assert task.parent_id == stage.span_id
    explicit = tracer.emit(
        "phase", cat="phase", begin=1.2, end=1.5, parent=task
    )
    assert explicit.parent_id == task.span_id
    tracer.end(stage)
    orphan = tracer.emit("late", cat="task", begin=0.0, end=1.0)
    assert orphan.parent_id is None


def test_helpers_filter_and_walk():
    tracer, _ = make_tracer()
    root = tracer.begin("experiment", cat="experiment")
    child = tracer.emit("task", cat="task", begin=0.0, end=1.0)
    tracer.end(root)
    assert tracer.root() is root
    assert tracer.by_category("task") == [child]
    assert tracer.children_of(root) == [child]


def test_instants_and_samples_stamp_current_clock():
    tracer, clock = make_tracer()
    clock.tick(4.0)
    marker = tracer.instant("executor-lost", executor=3)
    sample = tracer.sample("nvm", {"bytes_read": 10.0})
    assert marker.time == 4.0 and marker.attrs == {"executor": 3}
    assert sample.time == 4.0 and sample.values == {"bytes_read": 10.0}


# ------------------------------------------------------------ property tests
@given(
    steps=st.lists(
        st.tuples(st.booleans(), st.floats(0.0, 10.0)),
        min_size=1,
        max_size=60,
    )
)
@SETTINGS
def test_arbitrary_begin_end_sequences_keep_invariants(steps):
    """Any begin/end interleaving (ends ignored when empty) yields spans
    that are clock-monotone and strictly nested within their parents."""
    tracer, clock = make_tracer()
    for is_begin, dt in steps:
        clock.tick(dt)
        if is_begin:
            tracer.begin(f"s{len(tracer.spans)}")
        elif tracer.current is not None:
            tracer.end()
    tracer.finish()

    by_id = {span.span_id: span for span in tracer.spans}
    for span in tracer.spans:
        assert span.end is not None
        assert span.begin <= span.end
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            # A child opens after its parent and closes no later.
            assert parent.begin <= span.begin
            assert span.end <= parent.end


@given(
    intervals=st.lists(
        st.tuples(st.floats(0.0, 100.0), st.floats(0.0, 10.0)),
        max_size=40,
    )
)
@SETTINGS
def test_emitted_spans_preserve_given_interval(intervals):
    tracer, _ = make_tracer()
    for i, (begin, width) in enumerate(intervals):
        span = tracer.emit(f"t{i}", cat="task", begin=begin, end=begin + width)
        assert isinstance(span, Span)
        assert span.begin == begin and span.end == begin + width
    assert len(tracer.spans) == len(intervals)
    # Span ids are unique and assigned in emission order.
    ids = [span.span_id for span in tracer.spans]
    assert ids == sorted(ids) and len(set(ids)) == len(ids)
