"""Prometheus exposition: rendering, strict parsing, histogram checks."""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.prom import (
    CONTENT_TYPE,
    sanitize_label_name,
    sanitize_metric_name,
)


def small_registry():
    registry = MetricsRegistry()
    registry.inc("service.submitted", 3.0)
    registry.inc(
        "device.media_reads", 42.0, labels={"tier": "2", "device": "dimm0"}
    )
    registry.set_gauge("service.queue_depth", 5.0)
    for value in (0.1, 0.2, 0.4):
        registry.observe("jobs.execution_time_s", value)
    return registry


def test_content_type_pins_exposition_version():
    assert "version=0.0.4" in CONTENT_TYPE


def test_sanitize_names():
    assert sanitize_metric_name("jobs.execution_time_s") == (
        "jobs_execution_time_s"
    )
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_label_name("tier-id") == "tier_id"


def test_render_parse_roundtrip():
    text = render_prometheus(small_registry())
    series = parse_prometheus(text)
    assert series[("repro_service_submitted_total", "")] == 3.0
    assert series[("repro_service_queue_depth", "")] == 5.0
    assert series[
        ("repro_device_media_reads_total", 'device="dimm0",tier="2"')
    ] == 42.0
    assert series[("repro_jobs_execution_time_s_count", "")] == 3.0
    assert series[("repro_jobs_execution_time_s_sum", "")] == pytest.approx(
        0.7
    )
    inf_buckets = [
        key
        for key in series
        if key[0] == "repro_jobs_execution_time_s_bucket"
        and 'le="+Inf"' in key[1]
    ]
    assert len(inf_buckets) == 1
    assert series[inf_buckets[0]] == 3.0


def test_type_lines_once_per_family():
    text = render_prometheus(small_registry())
    type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
    assert len(type_lines) == len(set(type_lines))
    assert "# TYPE repro_jobs_execution_time_s histogram" in type_lines
    assert "# TYPE repro_service_submitted_total counter" in type_lines


def test_extra_labels_stamp_every_series():
    text = render_prometheus(
        small_registry(), extra_labels={"instance": "svc-1"}
    )
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        assert 'instance="svc-1"' in line


def test_namespace_is_configurable():
    registry = MetricsRegistry()
    registry.inc("c")
    assert "spark_c_total 1.0" in render_prometheus(
        registry, namespace="spark"
    )


def test_label_values_escape_quotes_and_backslashes():
    registry = MetricsRegistry()
    registry.inc("c", labels={"k": 'va"l\\ue'})
    text = render_prometheus(registry)
    series = parse_prometheus(text)
    (key,) = [k for k in series if k[0] == "repro_c_total"]
    assert "\\\"" in key[1]


def test_negative_observations_render_valid_histograms():
    registry = MetricsRegistry()
    for value in (-2.0, -1.0, 0.0, 3.0):
        registry.observe("delta", value)
    series = parse_prometheus(render_prometheus(registry))
    assert series[("repro_delta_count", "")] == 4.0
    assert series[("repro_delta_sum", "")] == 0.0


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError, match="unparseable"):
        parse_prometheus("not a metric line at all!\n")
    with pytest.raises(ValueError, match="bad sample value"):
        parse_prometheus("ok_metric twelve\n")
    with pytest.raises(ValueError, match="malformed TYPE"):
        parse_prometheus("# TYPE only_three\n")
    with pytest.raises(ValueError, match="unknown metric type"):
        parse_prometheus("# TYPE m sideways\n")
    with pytest.raises(ValueError, match="duplicate TYPE"):
        parse_prometheus("# TYPE m counter\n# TYPE m counter\n")
    with pytest.raises(ValueError, match="duplicate series"):
        parse_prometheus("m 1\nm 2\n")


def test_parse_rejects_histogram_without_inf_bucket():
    bad = (
        "# TYPE h histogram\n"
        'h_bucket{le="1.0"} 2\n'
        "h_sum 1.0\n"
        "h_count 2\n"
    )
    with pytest.raises(ValueError, match="lacks \\+Inf"):
        parse_prometheus(bad)


def test_parse_rejects_decreasing_cumulative_buckets():
    bad = (
        "# TYPE h histogram\n"
        'h_bucket{le="1.0"} 5\n'
        'h_bucket{le="2.0"} 3\n'
        'h_bucket{le="+Inf"} 5\n'
        "h_sum 1.0\n"
        "h_count 5\n"
    )
    with pytest.raises(ValueError, match="decrease"):
        parse_prometheus(bad)


def test_parse_accepts_special_values():
    series = parse_prometheus("a +Inf\nb -Inf\nc NaN\n")
    assert series[("a", "")] == math.inf
    assert series[("b", "")] == -math.inf
    assert math.isnan(series[("c", "")])


def test_empty_registry_renders_empty_document():
    assert parse_prometheus(render_prometheus(MetricsRegistry())) == {}
