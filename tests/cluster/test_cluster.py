"""Cluster substrate: CPU, sockets, interconnect, machine, numactl."""

import pytest

from repro.cluster.cpu import XEON_GOLD_5218R, CpuSpec
from repro.cluster.interconnect import UpiLink
from repro.cluster.node import Machine
from repro.cluster.numactl import NumactlBinding
from repro.cluster.socket import Socket
from repro.cluster.topology import DEFAULT_EXECUTOR_SOCKET, paper_testbed
from repro.memory.tiers import table1_tiers, tier_by_id


# ------------------------------------------------------------------------ CPU
def test_xeon_gold_matches_paper_specs():
    cpu = XEON_GOLD_5218R
    assert cpu.physical_cores == 20
    assert cpu.threads_per_core == 2
    assert cpu.hyperthreads == 40
    assert cpu.clock_hz == pytest.approx(2.10e9)


def test_compute_seconds_inverse_to_rate():
    cpu = XEON_GOLD_5218R
    ops = 1e9
    t = cpu.compute_seconds(ops)
    assert t == pytest.approx(ops / cpu.thread_ops_per_second)


def test_smt_degrades_throughput():
    cpu = XEON_GOLD_5218R
    assert cpu.throughput_factor(10) == 1.0
    assert cpu.throughput_factor(20) == 1.0
    assert cpu.throughput_factor(21) == cpu.smt_efficiency
    assert cpu.compute_seconds(1e9, busy_threads=40) > cpu.compute_seconds(1e9, busy_threads=1)


def test_cpu_spec_validation():
    with pytest.raises(ValueError):
        CpuSpec("x", 0, 2, 1e9, 1.0, 0.5, 1e9)
    with pytest.raises(ValueError):
        CpuSpec("x", 4, 2, 1e9, 1.0, 1.5, 1e9)


def test_compute_rejects_negative_ops():
    with pytest.raises(ValueError):
        XEON_GOLD_5218R.compute_seconds(-1)


# --------------------------------------------------------------------- socket
def test_socket_compute_timing(env):
    socket = Socket(env, 0, XEON_GOLD_5218R)

    def task(env, socket):
        with socket.threads.request() as thread:
            yield thread
            duration = yield from socket.compute(1e9)
            return duration

    p = env.process(task(env, socket))
    env.run()
    assert p.value == pytest.approx(1e9 / XEON_GOLD_5218R.thread_ops_per_second)


def test_socket_thread_pool_limits_concurrency(env):
    socket = Socket(env, 0, XEON_GOLD_5218R)
    finish = []

    def task(env, socket):
        with socket.threads.request() as thread:
            yield thread
            yield env.timeout(1.0)
        finish.append(env.now)

    for _ in range(50):  # more than 40 hyperthreads
        env.process(task(env, socket))
    env.run()
    assert max(finish) == pytest.approx(2.0)  # two waves


# ----------------------------------------------------------------------- UPI
def test_upi_link_validation():
    with pytest.raises(ValueError):
        UpiLink(0, 0)


def test_upi_connects_order_free():
    link = UpiLink(0, 1)
    assert link.connects(1, 0)
    assert link.connects(0, 1)
    assert not link.connects(0, 2)


# -------------------------------------------------------------------- machine
def test_paper_testbed_topology(env):
    machine = paper_testbed(env)
    assert len(machine.sockets) == 2
    assert len(machine.numa_nodes) == 4
    kinds = [n.kind for n in machine.numa_nodes]
    assert kinds == ["dram", "dram", "nvm", "nvm"]
    dimms = [n.device.dimm_count for n in machine.numa_nodes]
    assert dimms == [2, 2, 4, 2]
    # 4 + 2 Optane DIMMs as in the paper (6 x 256 GB total).
    nvm = machine.devices_of_kind("nvm")
    assert sum(d.dimm_count for d in nvm) == 6


def test_describe_contains_topology(env, machine):
    text = machine.describe()
    assert "socket 0" in text and "socket 1" in text
    assert "Optane" in text and "DDR4" in text


@pytest.mark.parametrize("tier_id", [0, 1, 2, 3])
def test_resolve_every_tier(env, machine, tier_id):
    bound = machine.resolve_tier(DEFAULT_EXECUTOR_SOCKET, tier_by_id(tier_id))
    assert bound.tier.tier_id == tier_id
    if tier_id in (0, 1):
        assert bound.device.technology.kind == "dram"
    else:
        assert bound.device.technology.kind == "nvm"


def test_resolve_tier0_is_socket_local(env, machine):
    bound = machine.resolve_tier(1, tier_by_id(0))
    assert bound.device.name == "numa1-dram"
    bound0 = machine.resolve_tier(0, tier_by_id(0))
    assert bound0.device.name == "numa0-dram"


def test_resolve_tier1_is_other_socket(env, machine):
    bound = machine.resolve_tier(1, tier_by_id(1))
    assert bound.device.name == "numa0-dram"
    assert bound.path.hop_latency > 0


def test_resolve_nvm_tiers_by_dimm_count(env, machine):
    tier2 = machine.resolve_tier(1, tier_by_id(2))
    tier3 = machine.resolve_tier(1, tier_by_id(3))
    assert tier2.device.dimm_count == 4
    assert tier3.device.dimm_count == 2
    assert tier3.path.efficiency < tier2.path.efficiency


def test_resolve_invalid_socket(env, machine):
    with pytest.raises(ValueError):
        machine.resolve_tier(7, tier_by_id(0))


def test_single_socket_machine_has_no_remote_dram(env):
    machine = Machine(env, cpu=XEON_GOLD_5218R, sockets=1)
    from repro.memory.device import MemoryDevice
    from repro.memory.technology import DDR4_DRAM

    machine.add_numa_node(
        MemoryDevice(env, "d0", DDR4_DRAM, dimm_count=2), attached_socket=0
    )
    with pytest.raises(ValueError):
        machine.resolve_tier(0, tier_by_id(1))


# -------------------------------------------------------------------- numactl
def test_numactl_binding_resolution(env, machine):
    binding = NumactlBinding.from_ids(cpu_socket=1, tier_id=2)
    socket, memory = binding.resolve(machine)
    assert socket.socket_id == 1
    assert memory.device.technology.kind == "nvm"
    assert "numactl" in binding.cmdline()


def test_all_tiers_bindable(env, machine):
    for tier in table1_tiers():
        binding = NumactlBinding(cpu_socket=1, tier=tier)
        _, memory = binding.resolve(machine)
        assert memory.tier is tier
