"""Fig. 2 (bottom) — DRAM vs Optane DCPM per-DIMM energy.

Paper findings: despite lower dynamic power per access, Optane DIMMs
consume *more total energy* because executions run longer; DRAM uses
63.9 % less energy on average; energy tracks execution time (Takeaway 5),
and sort/als scale to larger inputs without a disproportionate energy
penalty.
"""

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.core.characterization import (
    DRAM_DEVICE,
    NVM_DEVICE,
    dram_energy_advantage,
)
from repro.core.correlation import pearson
from repro.workloads.base import SIZE_ORDER

PAPER_ENERGY_ADVANTAGE = 63.9


def per_dimm_energy(result, device_name):
    report = result.telemetry.energy.get(device_name)
    return report.per_dimm_joules if report else 0.0


def test_fig2_energy_report(fig2_grid, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for workload in fig2_grid.workloads():
        for size in SIZE_ORDER:
            dram_run = fig2_grid.get(workload, size, 0)
            nvm_run = fig2_grid.get(workload, size, 2)
            rows.append(
                [
                    workload,
                    size,
                    per_dimm_energy(dram_run, DRAM_DEVICE),
                    per_dimm_energy(nvm_run, NVM_DEVICE),
                ]
            )
    advantage = dram_energy_advantage(fig2_grid)
    save_report(
        "fig2_energy",
        format_table(
            ["workload", "size", "DRAM J/DIMM (T0)", "DCPM J/DIMM (T2)"],
            rows,
            title="Fig 2 (bottom): per-DIMM energy, DRAM vs Optane DCPM",
            float_format="{:.4g}",
        )
        + f"\nDRAM energy advantage: paper {PAPER_ENERGY_ADVANTAGE}% | "
        f"measured {advantage:.1f}%",
    )


def test_dram_advantage_near_paper(fig2_grid):
    advantage = dram_energy_advantage(fig2_grid)
    assert advantage == pytest.approx(PAPER_ENERGY_ADVANTAGE, abs=15.0)


def test_nvm_total_energy_higher_everywhere(fig2_grid):
    for workload in fig2_grid.workloads():
        for size in SIZE_ORDER:
            dram = per_dimm_energy(fig2_grid.get(workload, size, 0), DRAM_DEVICE)
            nvm = per_dimm_energy(fig2_grid.get(workload, size, 2), NVM_DEVICE)
            assert nvm > dram, (workload, size)


def test_energy_tracks_execution_time(fig2_grid):
    """Takeaway 5: energy is in line with execution time."""
    times, energies = [], []
    for workload in fig2_grid.workloads():
        for size in SIZE_ORDER:
            run = fig2_grid.get(workload, size, 2)
            times.append(run.execution_time)
            energies.append(per_dimm_energy(run, NVM_DEVICE))
    assert pearson(times, energies) > 0.95


def test_sort_and_als_scale_without_energy_blowup(fig2_grid):
    """sort/als grow to large inputs with below-median energy growth."""
    def growth(workload):
        tiny = per_dimm_energy(fig2_grid.get(workload, "tiny", 2), NVM_DEVICE)
        large = per_dimm_energy(fig2_grid.get(workload, "large", 2), NVM_DEVICE)
        return large / tiny

    growths = {w: growth(w) for w in fig2_grid.workloads()}
    ordered = sorted(growths.values())
    median = ordered[len(ordered) // 2]
    assert growths["als"] <= median
    assert growths["sort"] <= max(ordered) * 0.8
