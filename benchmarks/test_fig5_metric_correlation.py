"""Fig. 5 — Pearson correlation of system-level metrics with exec time.

Paper findings: ``bayes`` shows near-linear correlation with almost all
system-level events (so linear models will predict it well); ``pagerank``
correlates weakly (needs richer models).  We reproduce the correlation
matrix over the local-tier runs across input sizes.
"""

import math

import pytest

from conftest import save_report
from repro.analysis.heatmap import format_heatmap
from repro.core.correlation import (
    average_abs_correlation,
    metric_time_correlation,
)
from repro.telemetry.events import SYSTEM_EVENTS


@pytest.fixture(scope="module")
def matrix(local_tier_runs):
    return metric_time_correlation(local_tier_runs)


def test_fig5_report(matrix, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    workloads = sorted(matrix)
    values = {
        (workload, event): matrix[workload][event]
        for workload in workloads
        for event in SYSTEM_EVENTS
    }
    save_report(
        "fig5_metric_correlation",
        format_heatmap(
            workloads,
            [e[:10] for e in SYSTEM_EVENTS],
            {(w, e[:10]): values[(w, e)] for w, e in values},
            title="Fig 5: Pearson r of system-level events vs execution time",
            value_format="{:5.2f}",
        ),
    )


def test_matrix_covers_all_workloads_and_events(matrix):
    assert len(matrix) == 7
    for row in matrix.values():
        assert set(row) == set(SYSTEM_EVENTS)


def test_correlations_are_valid_coefficients(matrix):
    for row in matrix.values():
        for value in row.values():
            assert math.isnan(value) or -1.0 <= value <= 1.0


def test_bayes_nearly_linear(matrix):
    """bayes is the paper's best-correlated application."""
    avg = average_abs_correlation(matrix)
    assert avg["bayes"] > 0.9


def test_bayes_among_top_correlated(matrix):
    avg = average_abs_correlation(matrix)
    ordered = sorted(avg, key=avg.get, reverse=True)
    assert "bayes" in ordered[:3]


def test_workloads_differ_in_predictability(matrix):
    """The spread across workloads is the figure's whole point."""
    avg = average_abs_correlation(matrix)
    finite = [v for v in avg.values() if not math.isnan(v)]
    assert max(finite) - min(finite) > 0.02
