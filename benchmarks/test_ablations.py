"""Model ablations and the tier-placement advisor (extensions).

DESIGN.md attributes the NVM-tier degradation to distinct mechanisms —
Optane's read/write asymmetry and controller-queue contention.  Each
ablation disables one mechanism and quantifies its share, validating the
model's causal structure (not just its end-to-end numbers).

Also exercises the Sec. IV-G extension: the placement advisor that picks
the most aggressive tier within a slowdown budget.
"""

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.core.ablation import run_ablation
from repro.core.placement import recommend_tier

CASES = (
    ("sort", "small", 1),
    ("lda", "small", 1),
    ("sort", "small", 8),
)


@pytest.fixture(scope="module")
def ablations():
    return {
        (workload, size, executors): run_ablation(
            workload, size, tier_id=2, executors=executors
        )
        for workload, size, executors in CASES
    }


def test_ablation_report(ablations, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for (workload, size, executors), result in sorted(ablations.items()):
        rows.append(
            [
                f"{workload}-{size}",
                executors,
                result.times["baseline"] * 1e3,
                f"{result.contribution('no_write_asymmetry'):.1%}",
                f"{result.contribution('dram_class_latency'):.1%}",
                f"{result.contribution('no_media_amplification'):.1%}",
            ]
        )
    save_report(
        "ablations",
        format_table(
            ["case", "executors", "baseline (ms)", "write asym.",
             "latency", "media granule"],
            rows,
            title="Ablations: mechanism contributions to NVM-tier slowdown",
        ),
    )


def test_write_asymmetry_contributes_for_lda(ablations):
    """lda's write-heavy Gibbs updates make asymmetry its top cost."""
    result = ablations[("lda", "small", 1)]
    assert result.contribution("no_write_asymmetry") > 0.1


def test_write_asymmetry_hits_lda_harder_than_sort(ablations):
    lda = ablations[("lda", "small", 1)].contribution("no_write_asymmetry")
    sort = ablations[("sort", "small", 1)].contribution("no_write_asymmetry")
    assert lda > sort


def test_latency_is_the_dominant_mechanism(ablations):
    """Takeaway 4 from the causal side: DRAM-class latency recovers the
    largest share of the NVM gap for single-executor runs."""
    result = ablations[("sort", "small", 1)]
    assert result.contribution("dram_class_latency") >= result.contribution(
        "no_media_amplification"
    )
    assert result.contribution("dram_class_latency") > 0.15


def test_media_amplification_matters_under_contention(ablations):
    single = ablations[("sort", "small", 1)].contribution("no_media_amplification")
    many = ablations[("sort", "small", 8)].contribution("no_media_amplification")
    assert many >= single
    assert many > 0.05


def test_ablations_never_slow_things_down(ablations):
    for result in ablations.values():
        for name in ("no_write_asymmetry", "dram_class_latency",
                     "no_media_amplification"):
            assert result.times[name] <= result.times["baseline"] * 1.001


# ----------------------------------------------------------------- placement
def test_placement_advisor_report(benchmark):
    recommendations = [
        recommend_tier(workload, "small", slowdown_budget=2.0)
        for workload in ("sort", "als", "lda")
    ]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_report(
        "placement_advisor",
        "Tier placement advisor (budget 2.0x):\n"
        + "\n".join(r.describe() for r in recommendations),
    )
    for rec in recommendations:
        assert 0 <= rec.recommended_tier <= 3
        # Predicted slowdown of the chosen tier respects the budget.
        assert rec.predicted_slowdowns[rec.recommended_tier] <= rec.budget


def test_tight_budget_prefers_local_tier():
    rec = recommend_tier("lda", "tiny", slowdown_budget=1.0)
    assert rec.recommended_tier == 0
