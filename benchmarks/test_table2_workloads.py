"""Table II — the examined Spark applications and dataset sizes.

Regenerates the workload inventory: every application of the paper's
suite with its scaled tiny/small/large dataset parameters, verifying the
generators produce the declared volumes.
"""

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.workloads import WORKLOAD_NAMES, get_workload
from repro.workloads.base import SIZE_ORDER

PAPER_CATEGORIES = {
    "sort": "micro",
    "repartition": "micro",
    "als": "ml",
    "bayes": "ml",
    "rf": "ml",
    "lda": "ml",
    "pagerank": "websearch",
}


def stage_all():
    """Stage every workload/size input and collect its HDFS volume."""
    rows = []
    for name in WORKLOAD_NAMES:
        workload = get_workload(name)
        for size in SIZE_ORDER:
            sc = SparkContext(conf=SparkConf())
            workload.prepare(sc, size)
            status = sc.hdfs.status(workload.input_path(size))
            profile = workload.profile(size)
            rows.append(
                [
                    name,
                    workload.category,
                    size,
                    ", ".join(f"{k}={v}" for k, v in sorted(profile.params.items())),
                    status.nbytes,
                    profile.partitions,
                ]
            )
            sc.stop()
    return rows


def test_table2_report(benchmark):
    rows = benchmark.pedantic(stage_all, rounds=1, iterations=1)
    save_report(
        "table2_workloads",
        format_table(
            ["app", "category", "size", "parameters", "input bytes", "partitions"],
            rows,
            title="Table II: examined applications and dataset sizes (scaled)",
        ),
    )
    assert len(rows) == len(WORKLOAD_NAMES) * len(SIZE_ORDER)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_categories_match_paper(name):
    assert get_workload(name).category == PAPER_CATEGORIES[name]


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_sizes_grow_monotonically(name):
    workload = get_workload(name)
    volumes = []
    for size in SIZE_ORDER:
        sc = SparkContext(conf=SparkConf())
        workload.prepare(sc, size)
        volumes.append(sc.hdfs.status(workload.input_path(size)).nbytes)
        sc.stop()
    assert volumes[0] < volumes[1] < volumes[2]
