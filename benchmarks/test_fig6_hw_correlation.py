"""Fig. 6 — correlation of hardware specs with execution time.

Paper finding (Takeaway 8): across tiers, execution time converges to
near-perfect **positive** correlation with idle latency and **negative**
correlation with bandwidth for every application and workload size —
hence linear models predict cross-tier performance well.
"""

import statistics

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.core.correlation import hardware_spec_correlation
from repro.core.prediction import predict_cross_tier


@pytest.fixture(scope="module")
def hw_matrix(fig2_grid):
    return hardware_spec_correlation(fig2_grid.results)


def test_fig6_report(hw_matrix, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [workload, size, row["latency"], row["bandwidth"]]
        for (workload, size), row in sorted(hw_matrix.items())
    ]
    mean_latency = statistics.mean(r["latency"] for r in hw_matrix.values())
    mean_bandwidth = statistics.mean(r["bandwidth"] for r in hw_matrix.values())
    save_report(
        "fig6_hw_correlation",
        format_table(
            ["workload", "size", "r(latency, time)", "r(bandwidth, time)"],
            rows,
            title="Fig 6: correlation of tier specs with execution time",
            float_format="{:+.3f}",
        )
        + f"\nmeans: latency {mean_latency:+.3f} (paper → +1), "
        f"bandwidth {mean_bandwidth:+.3f} (paper → −1)",
    )


def test_latency_correlation_near_plus_one(hw_matrix):
    for (workload, size), row in hw_matrix.items():
        assert row["latency"] > 0.85, (workload, size, row)


def test_bandwidth_correlation_strongly_negative(hw_matrix):
    for (workload, size), row in hw_matrix.items():
        assert row["bandwidth"] < -0.75, (workload, size, row)


def test_every_combination_present(hw_matrix):
    assert len(hw_matrix) == 7 * 3


def test_linear_cross_tier_prediction_works(fig2_grid):
    """The figure's consequence: hold out a tier, predict it linearly."""
    for held_out in (1, 2):
        predictions = predict_cross_tier(fig2_grid.results, held_out_tier=held_out)
        errors = [p.relative_error for p in predictions]
        assert statistics.median(errors) < 0.5, (
            f"tier {held_out}: median relative error {statistics.median(errors):.2f}"
        )
