"""Engine wall-clock benchmark — how fast the simulator itself runs.

Every other benchmark in this directory measures *simulated* quantities
(execution time, traffic, energy) that are pinned bit-for-bit by the
engine-invariance tests.  This module instead measures the *host*
wall-clock cost of producing them on a representative slice of the
Fig. 2 grid, and gates against the committed baseline so hot-path
regressions are caught before they land.

Artifacts:

- ``benchmarks/BENCH_engine.json`` — machine-readable measurements
  (overridable via ``BENCH_ENGINE_JSON``); CI uploads it as an artifact.
- ``benchmarks/baseline_engine.json`` — committed reference numbers.
  Regenerate deliberately with ``BENCH_UPDATE_BASELINE=1``.

Point selection: ``BENCH_POINTS="workload:size:tier,..."`` restricts the
run (the CI smoke step uses two points); the default set covers all
seven paper workloads.  Wall-clock numbers vary across machines, so the
regression gate only fails on a >50 % slowdown against baseline.

Campaign-level measurement: the full 84-point Fig. 2 grid is also timed
as one campaign four ways — every point simulated in full
(``reuse_traces=False``, serial), cold trace reuse (pooled: one capture
per behaviour class, the rest fast-replayed over the shared-memory
transport), warm trace reuse (pooled, every replayable point served
from artifacts written by the cold pass), and warm DES replay
(``fast_replay=False``, same pool) so the fast path's wall-clock win
and bit-identity are measured against the event-by-event replayer it
replaces.  Every traced pass must be value-identical to the direct one;
the PR-8 gate additionally holds the pooled cold/warm passes to ≤ ½ / ≤ ⅓
of the committed PR-4 serial wall clock.  ``BENCH_WORKERS`` sets the
pool width (default ``min(4, cpu_count)``),
``BENCH_CAMPAIGN="workload:size,..."`` shrinks the grid (CI smoke) and
``BENCH_CAMPAIGN=off`` skips it.

Capture-phase measurement (schema 4): every pass shares one dataset-
artifact directory (:mod:`repro.workloads.datacache`), so the direct
pass seeds the artifacts the cold capture wave reuses — the PR-9
mechanism.  ``time_capture_phase`` additionally captures each behaviour
class twice against a fresh dataset directory and records per-class
cache hit/miss counts: the second pass must be served entirely from
artifacts (zero misses) and stay checksum-identical to the first.  The
PR-9 gate holds the cold campaign to ≤ 1/1.8 of the committed PR-8
cold wall clock.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import pytest

from repro.analysis.resultstore import result_to_dict
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.runner import run_campaign
from repro.trace import capture_experiment
from repro.workloads import WORKLOAD_NAMES, datacache, datagen
from repro.workloads.base import SIZE_ORDER

BENCH_SCHEMA_VERSION = 4

#: Representative slice of the Fig. 2 grid: every paper workload on the
#: fastest and slowest tier, plus the two heaviest workloads at scale.
DEFAULT_POINTS: tuple[tuple[str, str, int], ...] = (
    ("sort", "small", 0),
    ("sort", "small", 3),
    ("repartition", "small", 0),
    ("repartition", "small", 3),
    ("als", "small", 0),
    ("als", "small", 3),
    ("bayes", "small", 0),
    ("bayes", "small", 3),
    ("rf", "small", 0),
    ("rf", "small", 3),
    ("lda", "small", 0),
    ("lda", "small", 3),
    ("pagerank", "small", 0),
    ("pagerank", "small", 3),
    ("lda", "large", 3),
    ("pagerank", "large", 3),
)

#: Best-of-N timing: absorbs one-off warmup noise without long runs.
ROUNDS = 2

#: Fail only on a >50 % slowdown — wall-clock baselines travel across
#: machines, so the gate must tolerate hardware variance.
REGRESSION_LIMIT = 1.5

#: The committed PR-4 serial campaign wall clocks (full 84-point grid).
#: The PR-8 acceptance gate is phrased against these absolute numbers:
#: pooled fast-replay campaigns must run the cold pass in ≤ half and the
#: warm pass in ≤ a third of what the serial DES-replay engine took.
PR4_COLD_WALL_S = 5.613
PR4_WARM_WALL_S = 1.204

#: The committed PR-8 cold-campaign wall clock (full 84-point grid,
#: serial, no dataset cache).  The PR-9 acceptance gate: with shared
#: dataset artifacts, vectorized kernels and batched DES dispatch, the
#: cold pass must run ≥ 1.8× faster than this — bit-identically.
PR8_COLD_WALL_S = 5.374
PR9_COLD_SPEEDUP = 1.8

BASELINE_PATH = Path(__file__).parent / "baseline_engine.json"


def bench_workers() -> int:
    spec = os.environ.get("BENCH_WORKERS", "").strip()
    if spec:
        return max(1, int(spec))
    return min(4, os.cpu_count() or 1)


def selected_points() -> list[tuple[str, str, int]]:
    spec = os.environ.get("BENCH_POINTS", "").strip()
    if not spec:
        return list(DEFAULT_POINTS)
    points = []
    for chunk in spec.split(","):
        workload, size, tier = chunk.strip().split(":")
        points.append((workload, size, int(tier)))
    return points


def point_key(workload: str, size: str, tier: int) -> str:
    return f"{workload}-{size}-t{tier}"


def time_point(workload: str, size: str, tier: int) -> dict:
    config = ExperimentConfig(workload=workload, size=size, tier=tier)
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        # Each round pays the full cost, including input generation.
        datagen.clear_cache()
        t0 = time.perf_counter()
        result = run_experiment(config)
        best = min(best, time.perf_counter() - t0)
    assert result is not None and result.verified, (workload, size, tier)
    return {
        "wall_s": best,
        "simulated_s": result.execution_time,
        "events": sum(result.telemetry.events.values()),
    }


def campaign_grid() -> list[ExperimentConfig]:
    """The campaign benchmark's configs: a workload×size set × 4 tiers."""
    spec = os.environ.get("BENCH_CAMPAIGN", "").strip()
    if spec.lower() in ("off", "0", "none"):
        return []
    if spec:
        pairs = [tuple(chunk.strip().split(":")) for chunk in spec.split(",")]
    else:
        pairs = [(w, s) for w in WORKLOAD_NAMES for s in SIZE_ORDER]
    return [
        ExperimentConfig(workload=workload, size=size, tier=tier)
        for workload, size in pairs
        for tier in (0, 1, 2, 3)
    ]


def time_campaign() -> dict | None:
    """Time the Fig. 2 grid campaign direct vs pooled cold/warm reuse.

    Returns ``None`` when ``BENCH_CAMPAIGN=off``.  The direct pass stays
    serial (the PR-4 reference shape); the traced passes run the PR-8
    path — a worker pool fed through the shared-memory transport with
    fast-path replay — plus one warm DES-replay pass (``fast_replay=
    False``) on the same pool, so the fast path's speedup is measured
    against the replayer it bypasses.  Every traced pass is asserted
    value-identical to the direct pass point by point, so the wall-clock
    comparison never trades correctness for speed.

    All four passes share one dataset-artifact directory: the direct
    pass seeds the artifacts, the cold capture wave loads them instead
    of regenerating every input from its seed (the PR-9 capture-phase
    win), and the warm passes never touch datasets at all.

    The cold pass — the only one gated against an absolute committed
    wall clock — runs ``ROUNDS`` times (fresh trace directory each
    round, so every round captures from scratch) and reports the best;
    single-shot walls on a shared box mix the engine's cost with
    co-tenant noise that the minimum strips out.
    """
    grid = campaign_grid()
    if not grid:
        return None
    workers = bench_workers()

    with tempfile.TemporaryDirectory(
        prefix="bench-traces-"
    ) as trace_dir, tempfile.TemporaryDirectory(
        prefix="bench-datasets-"
    ) as dataset_dir:
        datagen.clear_cache()
        t0 = time.perf_counter()
        direct = run_campaign(grid, reuse_traces=False, dataset_dir=dataset_dir)
        direct_wall = time.perf_counter() - t0
        direct.raise_on_failure()

        datagen.clear_cache()
        t0 = time.perf_counter()
        cold = run_campaign(
            grid, trace_dir=trace_dir, workers=workers, dataset_dir=dataset_dir
        )
        cold_walls = [time.perf_counter() - t0]
        cold.raise_on_failure()
        # Further cold rounds against throwaway trace directories: each
        # is cold by construction (no artifacts exist), and the gate
        # reads the best-of-N wall — the standard minimum-of-repeats
        # estimator, which measures the engine instead of whatever else
        # the host was doing during one particular pass.
        reference = [result_to_dict(r) for r in direct.results]
        for _ in range(ROUNDS - 1):
            with tempfile.TemporaryDirectory(
                prefix="bench-traces-cold-"
            ) as cold_retry_dir:
                datagen.clear_cache()
                t0 = time.perf_counter()
                cold_again = run_campaign(
                    grid,
                    trace_dir=cold_retry_dir,
                    workers=workers,
                    dataset_dir=dataset_dir,
                )
                cold_walls.append(time.perf_counter() - t0)
            cold_again.raise_on_failure()
            assert [
                result_to_dict(r) for r in cold_again.results
            ] == reference, "cold trace-reuse campaign is not value-identical"
        cold_wall = min(cold_walls)

        # Warm passes are warm by construction (the artifacts already
        # exist), so best-of-N just repeats the same pass; the minima
        # keep the fast-vs-DES ratio from wobbling with host noise.
        warm_walls = []
        for _ in range(ROUNDS):
            datagen.clear_cache()
            t0 = time.perf_counter()
            warm = run_campaign(
                grid,
                trace_dir=trace_dir,
                workers=workers,
                dataset_dir=dataset_dir,
            )
            warm_walls.append(time.perf_counter() - t0)
            warm.raise_on_failure()
        warm_wall = min(warm_walls)

        warm_des_walls = []
        for _ in range(ROUNDS):
            datagen.clear_cache()
            t0 = time.perf_counter()
            warm_des = run_campaign(
                grid, trace_dir=trace_dir, workers=workers,
                dataset_dir=dataset_dir, fast_replay=False,
            )
            warm_des_walls.append(time.perf_counter() - t0)
            warm_des.raise_on_failure()
        warm_des_wall = min(warm_des_walls)

    for label, report in (
        ("cold", cold), ("warm", warm), ("warm-DES", warm_des)
    ):
        assert [
            result_to_dict(r) for r in report.results
        ] == reference, f"{label} trace-reuse campaign is not value-identical"
    assert warm.replayed == len(grid), "warm pass should replay every point"
    assert warm_des.replayed == len(grid)

    return {
        "points": len(grid),
        "workers": workers,
        "behaviour_classes": cold.captured,
        "direct_wall_s": direct_wall,
        "traced_cold_wall_s": cold_wall,
        "cold_wall_runs": cold_walls,
        "traced_warm_wall_s": warm_wall,
        "traced_warm_des_wall_s": warm_des_wall,
        "cold_speedup": direct_wall / cold_wall,
        "warm_speedup": direct_wall / warm_wall,
        "fast_vs_des_speedup": warm_des_wall / warm_wall,
        "cold_replayed": cold.replayed,
    }


def time_capture_phase() -> dict | None:
    """Capture each behaviour class twice against one dataset cache.

    The first pass generates every input dataset and stores it as a
    memory-mapped artifact; the in-process memo is then dropped, so the
    second pass must be served entirely from artifacts on disk.  Both
    captures must produce the same trace checksum — the cache can only
    change *when* the dataset is built, never *what* the experiment
    computes.  Returns per-class hit/miss counts alongside the two
    walls; ``None`` when ``BENCH_CAMPAIGN=off``.
    """
    grid = campaign_grid()
    if not grid:
        return None
    classes = sorted({(c.workload, c.size) for c in grid})
    previous = datacache.active()
    per_class: dict[str, dict] = {}
    first_wall = 0.0
    second_wall = 0.0
    with tempfile.TemporaryDirectory(prefix="bench-capture-") as root:
        datacache.configure(root)
        try:
            for workload, size in classes:
                config = ExperimentConfig(
                    workload=workload, size=size, tier=0
                )
                datagen.clear_cache()
                t0 = time.perf_counter()
                _, first = capture_experiment(config)
                first_wall += time.perf_counter() - t0
                datagen.clear_cache()  # drop the memo: force the disk path
                datacache.reset_stats()
                t0 = time.perf_counter()
                _, second = capture_experiment(config)
                second_wall += time.perf_counter() - t0
                stats = datacache.stats()
                assert first is not None and second is not None
                assert second.checksum == first.checksum, (workload, size)
                per_class[f"{workload}-{size}"] = {
                    "hits": stats["hits"],
                    "misses": stats["misses"],
                }
        finally:
            datacache.configure(
                None if previous is None else previous.root
            )
            datagen.clear_cache()
            datacache.reset_stats()
    return {
        "behaviour_classes": len(classes),
        "first_pass_wall_s": first_wall,
        "second_pass_wall_s": second_wall,
        "classes": per_class,
    }


@pytest.fixture(scope="module")
def measurements() -> dict:
    points = {
        point_key(*point): time_point(*point) for point in selected_points()
    }
    data = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "rounds": ROUNDS,
        "python": platform.python_version(),
        "points": points,
        "total_wall_s": sum(p["wall_s"] for p in points.values()),
    }
    campaign = time_campaign()
    if campaign is not None:
        data["campaign"] = campaign
    capture = time_capture_phase()
    if capture is not None:
        data["capture"] = capture
    return data


def test_emit_bench_json(measurements):
    """Persist the measurement artifact (and optionally the baseline)."""
    out = Path(
        os.environ.get("BENCH_ENGINE_JSON", Path(__file__).parent / "BENCH_engine.json")
    )
    out.write_text(json.dumps(measurements, indent=1, sort_keys=True) + "\n")
    if os.environ.get("BENCH_UPDATE_BASELINE"):
        BASELINE_PATH.write_text(
            json.dumps(measurements, indent=1, sort_keys=True) + "\n"
        )
    assert out.exists()


def test_wallclock_regression_gate(measurements):
    """No measured point may regress >50 % against the committed baseline."""
    if not BASELINE_PATH.exists():
        pytest.skip("no committed baseline (regenerate with BENCH_UPDATE_BASELINE=1)")
    baseline = json.loads(BASELINE_PATH.read_text())
    regressions = []
    for key, point in measurements["points"].items():
        reference = baseline["points"].get(key)
        if reference is None:
            continue
        ratio = point["wall_s"] / reference["wall_s"]
        if ratio > REGRESSION_LIMIT:
            regressions.append(f"{key}: {ratio:.2f}x baseline")
    assert not regressions, "; ".join(regressions)


def test_campaign_trace_reuse_speedup(measurements):
    """Trace reuse must at least halve the campaign's wall clock.

    Only gated on the full default grid — a shrunk ``BENCH_CAMPAIGN``
    (the CI smoke) has too few replays per capture for a stable ratio,
    so there the fixture's value-identity assertions are the test.
    """
    campaign = measurements.get("campaign")
    if campaign is None:
        pytest.skip("campaign benchmark disabled (BENCH_CAMPAIGN=off)")
    if os.environ.get("BENCH_CAMPAIGN", "").strip():
        return  # shrunk grid: identity checked, ratio not meaningful
    assert campaign["cold_speedup"] >= 2.0, campaign
    assert campaign["warm_speedup"] >= campaign["cold_speedup"], campaign


def test_campaign_beats_pr4_serial_baseline(measurements):
    """The PR-8 acceptance gate, phrased against the *committed* PR-4
    numbers rather than this run's direct pass: the pooled fast-replay
    campaign must finish the cold pass in ≤ half and the warm pass in
    ≤ a third of what the serial DES-replay engine took on this grid.
    Full default grid only — a shrunk grid has different constants.

    The halving gates assume a ≥ 4-worker pool; on hosts with fewer
    cores the parallel half of the win does not exist (a process pool
    only adds IPC cost, so ``bench_workers`` correctly degrades), and
    the absolute comparison is meaningless — skip with the reason, and
    let ``test_fast_path_beats_des_replay`` hold the serial fast-path
    contribution as same-run ratios instead."""
    campaign = measurements.get("campaign")
    if campaign is None:
        pytest.skip("campaign benchmark disabled (BENCH_CAMPAIGN=off)")
    if os.environ.get("BENCH_CAMPAIGN", "").strip():
        pytest.skip("PR-4 reference numbers only apply to the full grid")
    cores = os.cpu_count() or 1
    if cores < 4 or campaign["workers"] < 4:
        pytest.skip(
            f"pooled halving gates need a 4-worker pool (host has "
            f"{cores} core(s), pool ran {campaign['workers']} wide); "
            f"serial ratio gates cover this host"
        )
    assert campaign["traced_cold_wall_s"] <= PR4_COLD_WALL_S / 2, campaign
    assert campaign["traced_warm_wall_s"] <= PR4_WARM_WALL_S / 3, campaign


def test_fast_path_beats_des_replay(measurements):
    """Same-run ratio gates — robust to host speed and timer noise, so
    they run whatever the core count.  The fast path must keep the
    warm campaign roughly an order of magnitude ahead of direct
    simulation and beat event-by-event DES replay head on.  (The warm
    floor is deliberately below PR-4's shipped 11.08×: the PR-9
    collector and teardown work sped the *direct* denominator up ~1.6×,
    which compresses the ratio even though warm replay itself also got
    faster.)"""
    campaign = measurements.get("campaign")
    if campaign is None:
        pytest.skip("campaign benchmark disabled (BENCH_CAMPAIGN=off)")
    if os.environ.get("BENCH_CAMPAIGN", "").strip():
        return  # shrunk grid: too few replays for a stable ratio
    assert campaign["fast_vs_des_speedup"] >= 1.5, campaign
    assert campaign["warm_speedup"] >= 8.0, campaign


def test_cold_campaign_beats_pr8_baseline(measurements):
    """The PR-9 acceptance gate: shared dataset artifacts + vectorized
    kernels + batched DES dispatch must make the cold campaign ≥ 1.8×
    faster than the committed PR-8 wall clock (5.374 s → ≤ ~2.99 s),
    with the fixture's value-identity assertions guaranteeing the win
    is bit-identical.  Full default grid only — the committed number
    does not transfer to a shrunk grid."""
    campaign = measurements.get("campaign")
    if campaign is None:
        pytest.skip("campaign benchmark disabled (BENCH_CAMPAIGN=off)")
    if os.environ.get("BENCH_CAMPAIGN", "").strip():
        pytest.skip("PR-8 reference numbers only apply to the full grid")
    limit = PR8_COLD_WALL_S / PR9_COLD_SPEEDUP
    assert campaign["traced_cold_wall_s"] <= limit, campaign


def test_second_pass_capture_hits_dataset_cache(measurements):
    """Every behaviour class's second capture must be served entirely
    from dataset artifacts: at least one hit, zero misses.  Runs under
    the shrunk CI-smoke grid too — hit accounting is exact whatever
    the grid size."""
    capture = measurements.get("capture")
    if capture is None:
        pytest.skip("campaign benchmark disabled (BENCH_CAMPAIGN=off)")
    for name, stats in capture["classes"].items():
        assert stats["hits"] > 0, (name, stats)
        assert stats["misses"] == 0, (name, stats)


def test_simulated_values_match_baseline(measurements):
    """Wall-clock may drift across hosts; simulated seconds must not."""
    if not BASELINE_PATH.exists():
        pytest.skip("no committed baseline")
    baseline = json.loads(BASELINE_PATH.read_text())
    for key, point in measurements["points"].items():
        reference = baseline["points"].get(key)
        if reference is None:
            continue
        assert point["simulated_s"] == pytest.approx(
            reference["simulated_s"], rel=1e-12
        ), key
        assert point["events"] == reference["events"], key
