"""Engine wall-clock benchmark — how fast the simulator itself runs.

Every other benchmark in this directory measures *simulated* quantities
(execution time, traffic, energy) that are pinned bit-for-bit by the
engine-invariance tests.  This module instead measures the *host*
wall-clock cost of producing them on a representative slice of the
Fig. 2 grid, and gates against the committed baseline so hot-path
regressions are caught before they land.

Artifacts:

- ``benchmarks/BENCH_engine.json`` — machine-readable measurements
  (overridable via ``BENCH_ENGINE_JSON``); CI uploads it as an artifact.
- ``benchmarks/baseline_engine.json`` — committed reference numbers.
  Regenerate deliberately with ``BENCH_UPDATE_BASELINE=1``.

Point selection: ``BENCH_POINTS="workload:size:tier,..."`` restricts the
run (the CI smoke step uses two points); the default set covers all
seven paper workloads.  Wall-clock numbers vary across machines, so the
regression gate only fails on a >50 % slowdown against baseline.

Campaign-level measurement: the full 84-point Fig. 2 grid is also timed
as one campaign four ways — every point simulated in full
(``reuse_traces=False``, serial), cold trace reuse (pooled: one capture
per behaviour class, the rest fast-replayed over the shared-memory
transport), warm trace reuse (pooled, every replayable point served
from artifacts written by the cold pass), and warm DES replay
(``fast_replay=False``, same pool) so the fast path's wall-clock win
and bit-identity are measured against the event-by-event replayer it
replaces.  Every traced pass must be value-identical to the direct one;
the PR-8 gate additionally holds the pooled cold/warm passes to ≤ ½ / ≤ ⅓
of the committed PR-4 serial wall clock.  ``BENCH_WORKERS`` sets the
pool width (default ``min(4, cpu_count)``),
``BENCH_CAMPAIGN="workload:size,..."`` shrinks the grid (CI smoke) and
``BENCH_CAMPAIGN=off`` skips it.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import pytest

from repro.analysis.resultstore import result_to_dict
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.runner import run_campaign
from repro.workloads import WORKLOAD_NAMES, datagen
from repro.workloads.base import SIZE_ORDER

BENCH_SCHEMA_VERSION = 3

#: Representative slice of the Fig. 2 grid: every paper workload on the
#: fastest and slowest tier, plus the two heaviest workloads at scale.
DEFAULT_POINTS: tuple[tuple[str, str, int], ...] = (
    ("sort", "small", 0),
    ("sort", "small", 3),
    ("repartition", "small", 0),
    ("repartition", "small", 3),
    ("als", "small", 0),
    ("als", "small", 3),
    ("bayes", "small", 0),
    ("bayes", "small", 3),
    ("rf", "small", 0),
    ("rf", "small", 3),
    ("lda", "small", 0),
    ("lda", "small", 3),
    ("pagerank", "small", 0),
    ("pagerank", "small", 3),
    ("lda", "large", 3),
    ("pagerank", "large", 3),
)

#: Best-of-N timing: absorbs one-off warmup noise without long runs.
ROUNDS = 2

#: Fail only on a >50 % slowdown — wall-clock baselines travel across
#: machines, so the gate must tolerate hardware variance.
REGRESSION_LIMIT = 1.5

#: The committed PR-4 serial campaign wall clocks (full 84-point grid).
#: The PR-8 acceptance gate is phrased against these absolute numbers:
#: pooled fast-replay campaigns must run the cold pass in ≤ half and the
#: warm pass in ≤ a third of what the serial DES-replay engine took.
PR4_COLD_WALL_S = 5.613
PR4_WARM_WALL_S = 1.204

BASELINE_PATH = Path(__file__).parent / "baseline_engine.json"


def bench_workers() -> int:
    spec = os.environ.get("BENCH_WORKERS", "").strip()
    if spec:
        return max(1, int(spec))
    return min(4, os.cpu_count() or 1)


def selected_points() -> list[tuple[str, str, int]]:
    spec = os.environ.get("BENCH_POINTS", "").strip()
    if not spec:
        return list(DEFAULT_POINTS)
    points = []
    for chunk in spec.split(","):
        workload, size, tier = chunk.strip().split(":")
        points.append((workload, size, int(tier)))
    return points


def point_key(workload: str, size: str, tier: int) -> str:
    return f"{workload}-{size}-t{tier}"


def time_point(workload: str, size: str, tier: int) -> dict:
    config = ExperimentConfig(workload=workload, size=size, tier=tier)
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        # Each round pays the full cost, including input generation.
        datagen.clear_cache()
        t0 = time.perf_counter()
        result = run_experiment(config)
        best = min(best, time.perf_counter() - t0)
    assert result is not None and result.verified, (workload, size, tier)
    return {
        "wall_s": best,
        "simulated_s": result.execution_time,
        "events": sum(result.telemetry.events.values()),
    }


def campaign_grid() -> list[ExperimentConfig]:
    """The campaign benchmark's configs: a workload×size set × 4 tiers."""
    spec = os.environ.get("BENCH_CAMPAIGN", "").strip()
    if spec.lower() in ("off", "0", "none"):
        return []
    if spec:
        pairs = [tuple(chunk.strip().split(":")) for chunk in spec.split(",")]
    else:
        pairs = [(w, s) for w in WORKLOAD_NAMES for s in SIZE_ORDER]
    return [
        ExperimentConfig(workload=workload, size=size, tier=tier)
        for workload, size in pairs
        for tier in (0, 1, 2, 3)
    ]


def time_campaign() -> dict | None:
    """Time the Fig. 2 grid campaign direct vs pooled cold/warm reuse.

    Returns ``None`` when ``BENCH_CAMPAIGN=off``.  The direct pass stays
    serial (the PR-4 reference shape); the traced passes run the PR-8
    path — a worker pool fed through the shared-memory transport with
    fast-path replay — plus one warm DES-replay pass (``fast_replay=
    False``) on the same pool, so the fast path's speedup is measured
    against the replayer it bypasses.  Every traced pass is asserted
    value-identical to the direct pass point by point, so the wall-clock
    comparison never trades correctness for speed.
    """
    grid = campaign_grid()
    if not grid:
        return None
    workers = bench_workers()

    datagen.clear_cache()
    t0 = time.perf_counter()
    direct = run_campaign(grid, reuse_traces=False)
    direct_wall = time.perf_counter() - t0
    direct.raise_on_failure()

    with tempfile.TemporaryDirectory(prefix="bench-traces-") as trace_dir:
        datagen.clear_cache()
        t0 = time.perf_counter()
        cold = run_campaign(grid, trace_dir=trace_dir, workers=workers)
        cold_wall = time.perf_counter() - t0
        cold.raise_on_failure()

        datagen.clear_cache()
        t0 = time.perf_counter()
        warm = run_campaign(grid, trace_dir=trace_dir, workers=workers)
        warm_wall = time.perf_counter() - t0
        warm.raise_on_failure()

        datagen.clear_cache()
        t0 = time.perf_counter()
        warm_des = run_campaign(
            grid, trace_dir=trace_dir, workers=workers, fast_replay=False
        )
        warm_des_wall = time.perf_counter() - t0
        warm_des.raise_on_failure()

    reference = [result_to_dict(r) for r in direct.results]
    for label, report in (
        ("cold", cold), ("warm", warm), ("warm-DES", warm_des)
    ):
        assert [
            result_to_dict(r) for r in report.results
        ] == reference, f"{label} trace-reuse campaign is not value-identical"
    assert warm.replayed == len(grid), "warm pass should replay every point"
    assert warm_des.replayed == len(grid)

    return {
        "points": len(grid),
        "workers": workers,
        "behaviour_classes": cold.captured,
        "direct_wall_s": direct_wall,
        "traced_cold_wall_s": cold_wall,
        "traced_warm_wall_s": warm_wall,
        "traced_warm_des_wall_s": warm_des_wall,
        "cold_speedup": direct_wall / cold_wall,
        "warm_speedup": direct_wall / warm_wall,
        "fast_vs_des_speedup": warm_des_wall / warm_wall,
        "cold_replayed": cold.replayed,
    }


@pytest.fixture(scope="module")
def measurements() -> dict:
    points = {
        point_key(*point): time_point(*point) for point in selected_points()
    }
    data = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "rounds": ROUNDS,
        "python": platform.python_version(),
        "points": points,
        "total_wall_s": sum(p["wall_s"] for p in points.values()),
    }
    campaign = time_campaign()
    if campaign is not None:
        data["campaign"] = campaign
    return data


def test_emit_bench_json(measurements):
    """Persist the measurement artifact (and optionally the baseline)."""
    out = Path(
        os.environ.get("BENCH_ENGINE_JSON", Path(__file__).parent / "BENCH_engine.json")
    )
    out.write_text(json.dumps(measurements, indent=1, sort_keys=True) + "\n")
    if os.environ.get("BENCH_UPDATE_BASELINE"):
        BASELINE_PATH.write_text(
            json.dumps(measurements, indent=1, sort_keys=True) + "\n"
        )
    assert out.exists()


def test_wallclock_regression_gate(measurements):
    """No measured point may regress >50 % against the committed baseline."""
    if not BASELINE_PATH.exists():
        pytest.skip("no committed baseline (regenerate with BENCH_UPDATE_BASELINE=1)")
    baseline = json.loads(BASELINE_PATH.read_text())
    regressions = []
    for key, point in measurements["points"].items():
        reference = baseline["points"].get(key)
        if reference is None:
            continue
        ratio = point["wall_s"] / reference["wall_s"]
        if ratio > REGRESSION_LIMIT:
            regressions.append(f"{key}: {ratio:.2f}x baseline")
    assert not regressions, "; ".join(regressions)


def test_campaign_trace_reuse_speedup(measurements):
    """Trace reuse must at least halve the campaign's wall clock.

    Only gated on the full default grid — a shrunk ``BENCH_CAMPAIGN``
    (the CI smoke) has too few replays per capture for a stable ratio,
    so there the fixture's value-identity assertions are the test.
    """
    campaign = measurements.get("campaign")
    if campaign is None:
        pytest.skip("campaign benchmark disabled (BENCH_CAMPAIGN=off)")
    if os.environ.get("BENCH_CAMPAIGN", "").strip():
        return  # shrunk grid: identity checked, ratio not meaningful
    assert campaign["cold_speedup"] >= 2.0, campaign
    assert campaign["warm_speedup"] >= campaign["cold_speedup"], campaign


def test_campaign_beats_pr4_serial_baseline(measurements):
    """The PR-8 acceptance gate, phrased against the *committed* PR-4
    numbers rather than this run's direct pass: the pooled fast-replay
    campaign must finish the cold pass in ≤ half and the warm pass in
    ≤ a third of what the serial DES-replay engine took on this grid.
    Full default grid only — a shrunk grid has different constants.

    On a single-core host the parallel half of the win does not exist
    (a process pool on one CPU only adds IPC cost, so ``bench_workers``
    correctly degrades to 1); there the gate holds the *serial*
    fast-path contribution instead, as same-run ratios — which, unlike
    absolute wall clocks, are robust to host speed and timer noise."""
    campaign = measurements.get("campaign")
    if campaign is None:
        pytest.skip("campaign benchmark disabled (BENCH_CAMPAIGN=off)")
    if os.environ.get("BENCH_CAMPAIGN", "").strip():
        pytest.skip("PR-4 reference numbers only apply to the full grid")
    if campaign["workers"] >= 2:
        assert campaign["traced_cold_wall_s"] <= PR4_COLD_WALL_S / 2, campaign
        assert campaign["traced_warm_wall_s"] <= PR4_WARM_WALL_S / 3, campaign
    else:
        # PR-4 shipped warm_speedup 11.08×; the fast path must lift the
        # same-run warm ratio well past it and beat DES replay head on.
        assert campaign["fast_vs_des_speedup"] >= 1.5, campaign
        assert campaign["warm_speedup"] >= 15.0, campaign


def test_simulated_values_match_baseline(measurements):
    """Wall-clock may drift across hosts; simulated seconds must not."""
    if not BASELINE_PATH.exists():
        pytest.skip("no committed baseline")
    baseline = json.loads(BASELINE_PATH.read_text())
    for key, point in measurements["points"].items():
        reference = baseline["points"].get(key)
        if reference is None:
            continue
        assert point["simulated_s"] == pytest.approx(
            reference["simulated_s"], rel=1e-12
        ), key
        assert point["events"] == reference["events"], key
