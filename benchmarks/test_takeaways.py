"""The paper's eight takeaways as machine-checked findings.

Runs the guideline checkers of :mod:`repro.core.guidelines` against
fresh measurements and asserts every takeaway holds in the reproduction.
"""

import pytest

from conftest import save_report
from repro.core.characterization import characterize
from repro.core.guidelines import (
    takeaway1_remote_tolerance,
    takeaway2_nvm_gap_grows,
    takeaway3_write_sensitivity,
    takeaway4_latency_bound,
    takeaway5_energy_follows_time,
    takeaway6_executor_contention,
    takeaway7_large_workloads_scale,
    takeaway8_predictability,
)
from repro.core.experiment import ExperimentConfig
from repro.core.sweeps import executor_core_sweep, mba_sweep


@pytest.fixture(scope="module")
def findings(fig2_grid):
    mba = [
        mba_sweep(
            ExperimentConfig(workload=workload, size="small", tier=2),
            levels=(10, 50, 100),
        )
        for workload in ("sort", "lda", "bayes")
    ]
    sort_small = executor_core_sweep(
        ExperimentConfig(workload="sort", size="small", tier=2),
        executors=(1, 2, 4, 8), cores=(40,),
    )
    pagerank_small = executor_core_sweep(
        ExperimentConfig(workload="pagerank", size="small", tier=2),
        executors=(1, 8), cores=(40,),
    )
    pagerank_large = executor_core_sweep(
        ExperimentConfig(workload="pagerank", size="large", tier=2),
        executors=(1, 8), cores=(40,),
    )
    return [
        takeaway1_remote_tolerance(fig2_grid),
        takeaway2_nvm_gap_grows(fig2_grid),
        takeaway3_write_sensitivity(fig2_grid),
        takeaway4_latency_bound(mba, threshold=0.3),
        takeaway5_energy_follows_time(fig2_grid),
        takeaway6_executor_contention(sort_small),
        takeaway7_large_workloads_scale(pagerank_small, pagerank_large),
        takeaway8_predictability(fig2_grid.results),
    ]


def test_takeaways_report(findings, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_report(
        "takeaways",
        "Paper takeaways, re-verified on the simulated testbed:\n"
        + "\n".join(finding.describe() for finding in findings),
    )


@pytest.mark.parametrize("index", range(8))
def test_each_takeaway_holds(findings, index):
    finding = findings[index]
    assert finding.holds, finding.describe()


def test_takeaways_numbered_one_to_eight(findings):
    assert [f.takeaway for f in findings] == list(range(1, 9))
