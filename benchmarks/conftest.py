"""Shared fixtures and reporting helpers for the paper benchmarks.

Each benchmark module regenerates one table or figure of the paper,
prints it, saves it under ``benchmarks/results/`` and asserts the
paper's qualitative findings (orderings, gaps, crossovers).

Heavy sweeps are session-scoped fixtures so several benchmark tests can
share one set of measurements.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.characterization import characterize

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Print a figure/table and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def fig2_grid():
    """The full Fig. 2 measurement grid: 7 workloads x 3 sizes x 4 tiers."""
    return characterize()


@pytest.fixture(scope="session")
def local_tier_runs(fig2_grid):
    """Local-tier (Tier 0) results across sizes — input to Fig. 5."""
    return [r for r in fig2_grid.results if r.config.tier == 0]
