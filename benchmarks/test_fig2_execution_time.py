"""Fig. 2 (top) — execution time across tiers, workloads and sizes.

Paper findings reproduced here:

- Tier 0 achieves ~44.2 % / 66.4 % / 90.1 % better execution time on
  average than Tiers 1 / 2 / 3 (computed as mean((T_r − T_0)/T_r)).
- NVM-bound executions need substantially more time than DRAM-bound.
- Certain workload/size combinations tolerate remote memory (Takeaway 1).
- ``als`` shows an almost flat profile across sizes.
"""

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.core.characterization import (
    technology_gap_summary,
    tier_gap_summary,
)
from repro.workloads.base import SIZE_ORDER

PAPER_TIER_GAPS = {1: 44.2, 2: 66.4, 3: 90.1}


def test_fig2_execution_time_report(fig2_grid, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for workload in fig2_grid.workloads():
        for size in SIZE_ORDER:
            base = fig2_grid.time(workload, size, 0)
            rows.append(
                [
                    workload,
                    size,
                    base * 1e3,
                    fig2_grid.time(workload, size, 1) * 1e3,
                    fig2_grid.time(workload, size, 2) * 1e3,
                    fig2_grid.time(workload, size, 3) * 1e3,
                ]
            )
    gaps = tier_gap_summary(fig2_grid)
    footer = "\n".join(
        f"Tier 0 beats Tier {tier}: paper {PAPER_TIER_GAPS[tier]:.1f}% | "
        f"measured {gap:.1f}%"
        for tier, gap in sorted(gaps.items())
    )
    save_report(
        "fig2_execution_time",
        format_table(
            ["workload", "size", "T0 (ms)", "T1 (ms)", "T2 (ms)", "T3 (ms)"],
            rows,
            title="Fig 2 (top): execution time per tier",
        )
        + "\n" + footer,
    )


def test_all_runs_verified(fig2_grid):
    assert fig2_grid.all_verified()


def test_tier_ordering_holds_for_every_cell(fig2_grid):
    for workload in fig2_grid.workloads():
        for size in SIZE_ORDER:
            times = [fig2_grid.time(workload, size, t) for t in (0, 1, 2, 3)]
            assert times[0] == min(times), (workload, size)
            assert times[3] == max(times), (workload, size)


def test_average_tier_gaps_near_paper(fig2_grid):
    gaps = tier_gap_summary(fig2_grid)
    for tier, paper in PAPER_TIER_GAPS.items():
        assert gaps[tier] == pytest.approx(paper, abs=15.0), (
            f"tier {tier}: measured {gaps[tier]:.1f}% vs paper {paper}%"
        )
    assert gaps[1] < gaps[2] < gaps[3]


def test_nvm_needs_more_time_than_dram(fig2_grid):
    assert technology_gap_summary(fig2_grid) > 50.0


def test_some_combinations_tolerate_remote_memory(fig2_grid):
    """Takeaway 1: tolerance exists and varies across combinations."""
    ratios = []
    for workload in fig2_grid.workloads():
        for size in SIZE_ORDER:
            ratios.append(
                fig2_grid.time(workload, size, 1) / fig2_grid.time(workload, size, 0)
            )
    assert min(ratios) < 1.5  # someone tolerates remote DRAM
    assert max(ratios) - min(ratios) > 0.2  # and it is workload-dependent


def test_als_flattest_across_sizes(fig2_grid):
    """The paper singles out als as nearly size-invariant."""
    def growth(workload):
        tiny = fig2_grid.time(workload, "tiny", 0)
        large = fig2_grid.time(workload, "large", 0)
        return large / tiny

    growths = {w: growth(w) for w in fig2_grid.workloads()}
    assert growths["als"] <= sorted(growths.values())[1]  # among the two flattest


def test_gap_widens_with_execution_scale(fig2_grid):
    """Takeaway 2: longer executions → larger NVM/DRAM gap."""
    pairs = []
    for workload in fig2_grid.workloads():
        for size in SIZE_ORDER:
            dram = fig2_grid.time(workload, size, 0)
            pairs.append((dram, fig2_grid.time(workload, size, 2) / dram))
    pairs.sort()
    half = len(pairs) // 2
    short_gap = sum(g for _, g in pairs[:half]) / half
    long_gap = sum(g for _, g in pairs[half:]) / (len(pairs) - half)
    assert long_gap > short_gap
