"""Fig. 4 — speedup/slowdown across executors × cores on the NVM tier.

Paper findings:

- sort, rf and pagerank suffer significant slowdowns on the NVM tier as
  executor counts grow (down to 3.11× slowdown); the co-operation traffic
  of many executors hammers the persistent memory (Takeaway 6).
- lda is comparatively insensitive to the configuration.
- For the *large* workload, pagerank flips: more executors bring speedup
  (efficient partitioning, executors no longer under-utilized —
  Takeaway 7).
- Adding cores per executor does not necessarily help (shared-resource
  contention).
"""

import pytest

from conftest import save_report
from repro.analysis.heatmap import format_heatmap
from repro.core.experiment import ExperimentConfig
from repro.core.sweeps import CORE_GRID, EXECUTOR_GRID, executor_core_sweep

WORKLOADS = ("sort", "rf", "lda", "pagerank")


@pytest.fixture(scope="module")
def grids():
    out = {}
    for workload in WORKLOADS:
        for size in ("small", "large"):
            out[(workload, size)] = executor_core_sweep(
                ExperimentConfig(workload=workload, size=size, tier=2),
                executors=EXECUTOR_GRID, cores=CORE_GRID,
            )
    return out


def test_fig4_report(grids, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sections = []
    for (workload, size), grid in sorted(grids.items()):
        values = {
            (e, c): grid.speedup(e, c)
            for e in EXECUTOR_GRID
            for c in CORE_GRID
        }
        sections.append(
            format_heatmap(
                list(EXECUTOR_GRID),
                list(CORE_GRID),
                values,
                title=(
                    f"Fig 4 {workload}-{size} (Tier 2): speedup vs 1 executor x 40 "
                    f"cores (rows=executors, cols=cores)"
                ),
            )
        )
    save_report("fig4_executor_cores", "\n\n".join(sections))


@pytest.mark.parametrize("workload", ("sort", "rf"))
def test_small_workloads_slow_down_with_executors(grids, workload):
    grid = grids[(workload, "small")]
    assert grid.speedup(8, 40) < 0.8, (
        f"{workload}-small should slow down at 8 executors (Takeaway 6)"
    )


def test_worst_slowdown_magnitude_near_paper(grids):
    """Paper reports slowdowns down to 3.11x; ours reach the same regime."""
    worst = max(
        grids[(w, "small")].worst_slowdown() for w in ("sort", "rf", "pagerank")
    )
    assert 1.5 < worst < 6.0


def test_lda_least_affected(grids):
    """lda's grid variation is smaller than sort/rf's (paper Fig. 4c)."""
    def variation(grid):
        speedups = list(grid.speedup_grid().values())
        return max(speedups) / min(speedups)

    lda_var = variation(grids[("lda", "small")])
    others = [variation(grids[(w, "small")]) for w in ("sort", "rf")]
    assert lda_var < max(others)


def test_pagerank_large_gains_from_executors(grids):
    """Fig 4h: pagerank-large speeds up as executors increase."""
    grid = grids[("pagerank", "large")]
    assert grid.speedup(8, 40) > 1.2
    assert grid.speedup(4, 40) > 1.0


def test_pagerank_small_does_not_gain_like_large(grids):
    """Fig 4d vs 4h: the small workload lacks the large one's scaling."""
    small = grids[("pagerank", "small")].speedup(8, 40)
    large = grids[("pagerank", "large")].speedup(8, 40)
    assert large > small


def test_more_cores_not_always_faster(grids):
    """Takeaway 6: core scaling hits shared-resource contention."""
    non_improving = 0
    for grid in grids.values():
        for executors in EXECUTOR_GRID:
            t20 = grid.times[(executors, 20)]
            t40 = grid.times[(executors, 40)]
            if t40 >= t20 * 0.98:
                non_improving += 1
    assert non_improving >= 4


def test_dram_tier_tolerates_executor_scaling():
    """The contention effect is NVM-specific (Takeaway 6)."""
    base = ExperimentConfig(workload="sort", size="small")
    dram = executor_core_sweep(base, tier=0, executors=(1, 8), cores=(40,))
    nvm = executor_core_sweep(base, tier=2, executors=(1, 8), cores=(40,))
    dram_ratio = dram.times[(8, 40)] / dram.times[(1, 40)]
    nvm_ratio = nvm.times[(8, 40)] / nvm.times[(1, 40)]
    assert nvm_ratio > dram_ratio
    assert dram_ratio < 1.4
