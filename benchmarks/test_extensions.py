"""Extensions beyond the paper: interleave, aging, unified shuffle, traces.

Not reproductions of paper figures — these quantify the additional
deployment options the library models, continuing the paper's
"discussion and future perspectives" agenda with runnable numbers.
"""

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.core.substitution import run_with_technology
from repro.memory.cxl import CXL_EXPANDER, cxl_technology_with_latency
from repro.memory.faults import age_device
from repro.memory.interleave import InterleavePolicy, interleaved_technology
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.costs import CostSpec
from repro.workloads import get_workload
from repro.workloads.trace_replay import StageSpec, TraceReplayWorkload, TraceSpec

WORKLOAD, SIZE = "bayes", "small"


def run_on_technology(tech, workload=WORKLOAD, size=SIZE):
    """Run a workload with the NVM pools replaced by ``tech``."""
    outcome = run_with_technology(tech, workload, size)
    assert outcome.verified
    return outcome.execution_time


# ------------------------------------------------------------------ interleave
@pytest.fixture(scope="module")
def interleave_times():
    fractions = (0.0, 0.25, 0.5, 0.75, 1.0)
    return {
        f: run_on_technology(interleaved_technology(InterleavePolicy(f)))
        for f in fractions
    }


def test_interleave_report(interleave_times, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [f"{f:.0%} DRAM pages", t * 1e3] for f, t in sorted(interleave_times.items())
    ]
    save_report(
        "ext_interleave",
        format_table(
            ["interleave policy", "time (ms)"],
            rows,
            title=f"{WORKLOAD}-{SIZE}: numactl --interleave DRAM fractions",
        ),
    )


def test_interleave_monotone_in_dram_fraction(interleave_times):
    ordered = [t for _, t in sorted(interleave_times.items())]
    assert ordered == sorted(ordered, reverse=True)


def test_half_interleave_beats_midpoint(interleave_times):
    """Parallel controllers: 50/50 interleave beats the halfway point of
    the pure endpoints (the bandwidth-additivity payoff)."""
    midpoint = (interleave_times[0.0] + interleave_times[1.0]) / 2
    assert interleave_times[0.5] < midpoint


# ----------------------------------------------------------------------- aging
@pytest.fixture(scope="module")
def aging_times():
    out = {}
    for wear in (0.0, 0.5, 1.0):
        sc = SparkContext(conf=SparkConf(memory_tier=2))
        device = sc.executors[0].memory.device
        with age_device(device, wear):
            outcome = get_workload(WORKLOAD).run(sc, SIZE)
        assert outcome.verified
        out[wear] = outcome.execution_time
        sc.stop()
    return out


def test_aging_report(aging_times, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[f"{w:.0%} endurance used", t * 1e3] for w, t in sorted(aging_times.items())]
    save_report(
        "ext_nvm_aging",
        format_table(
            ["wear level", "time (ms)"],
            rows,
            title=f"{WORKLOAD}-{SIZE}: performance of aged NVDIMMs (Takeaway 3)",
        ),
    )


def test_aging_degrades_monotonically(aging_times):
    assert aging_times[0.0] < aging_times[0.5] < aging_times[1.0]


def test_end_of_life_meaningfully_slower(aging_times):
    assert aging_times[1.0] > aging_times[0.0] * 1.2


# ------------------------------------------------------------- unified shuffle
def test_unified_shuffle_report(benchmark):
    def run(unified):
        sc = SparkContext(
            conf=SparkConf(memory_tier=2, num_executors=4, default_parallelism=8,
                           unified_shuffle=unified)
        )
        outcome = get_workload("repartition").run(sc, "small")
        assert outcome.verified
        return outcome.execution_time

    stock = run(False)
    unified = run(True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_report(
        "ext_unified_shuffle",
        format_table(
            ["shuffle mode", "time (ms)"],
            [["stock (block transfer)", stock * 1e3],
             ["unified memory (zero copy)", unified * 1e3]],
            title="repartition-small, 4 executors on NVM: shuffle modes",
        ),
    )
    assert unified < stock


# ----------------------------------------------------------------- trace replay
def test_trace_replay_across_tiers(benchmark):
    spec = TraceSpec(
        name="bench-etl",
        stages=(
            StageSpec("scan", records=5_000, record_bytes=200,
                      cost=CostSpec(ops_per_record=120, random_reads_per_record=6)),
            StageSpec("join", records=5_000, shuffle=True,
                      cost=CostSpec(ops_per_record=350, random_reads_per_record=18,
                                    random_writes_per_record=5)),
        ),
        partitions=8,
    )
    times = {}
    for tier in (0, 2):
        sc = SparkContext(conf=SparkConf(memory_tier=tier))
        outcome = TraceReplayWorkload.from_spec(spec).run(sc, "small")
        assert outcome.verified
        times[tier] = outcome.execution_time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_report(
        "ext_trace_replay",
        format_table(
            ["tier", "time (ms)", "vs T0"],
            [[f"Tier {t}", v * 1e3, f"{v / times[0]:.2f}x"] for t, v in sorted(times.items())],
            title="trace-replay ETL pipeline across tiers",
        ),
    )
    assert times[2] > times[0]


# ------------------------------------------------------------------- CXL tier
@pytest.fixture(scope="module")
def cxl_comparison():
    from repro.core.experiment import ExperimentConfig, run_experiment

    return {
        "dram (Tier 0)": run_experiment(
            ExperimentConfig(workload=WORKLOAD, size=SIZE, tier=0)
        ).execution_time,
        "optane (Tier 2)": run_experiment(
            ExperimentConfig(workload=WORKLOAD, size=SIZE, tier=2)
        ).execution_time,
        "cxl expander": run_on_technology(CXL_EXPANDER),
        "cxl fast link (60ns)": run_on_technology(cxl_technology_with_latency(60.0)),
        "cxl slow link (300ns)": run_on_technology(cxl_technology_with_latency(300.0)),
    }


def test_cxl_report(cxl_comparison, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[name, t * 1e3] for name, t in cxl_comparison.items()]
    save_report(
        "ext_cxl_tier",
        format_table(
            ["capacity tier", "time (ms)"],
            rows,
            title=f"{WORKLOAD}-{SIZE}: a hypothetical CXL capacity tier "
                  f"(the intro's forward look)",
        ),
    )


def test_cxl_sits_between_dram_and_optane(cxl_comparison):
    assert (
        cxl_comparison["dram (Tier 0)"]
        < cxl_comparison["cxl expander"]
        < cxl_comparison["optane (Tier 2)"]
    )


def test_cxl_link_latency_governs(cxl_comparison):
    """Takeaway 4, forward-applied: the link latency — not the healthy
    DRAM-class bandwidth — decides where CXL lands."""
    assert (
        cxl_comparison["cxl fast link (60ns)"]
        < cxl_comparison["cxl expander"]
        < cxl_comparison["cxl slow link (300ns)"]
    )
