"""Fig. 2 (middle) — NVDIMM media reads/writes per workload and size.

Paper findings: bayes, lda and pagerank generate an order of magnitude
more accesses than the other workloads; performance degrades with access
count; a growing write share degrades performance *non-linearly*
(Takeaway 3), with lda-large the canonical write-heavy case.
"""

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.core.correlation import pearson
from repro.workloads.base import SIZE_ORDER

HEAVY = ("bayes", "lda", "pagerank")
LIGHT = ("sort", "als", "rf")


@pytest.fixture(scope="module")
def nvm_runs(fig2_grid):
    """Tier-2 (socket-attached NVM) runs, where ipmctl counters apply."""
    return {
        (r.config.workload, r.config.size): r
        for r in fig2_grid.results
        if r.config.tier == 2
    }


def test_fig2_accesses_report(nvm_runs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for (workload, size), result in sorted(nvm_runs.items()):
        rows.append(
            [
                workload,
                size,
                result.nvm_reads,
                result.nvm_writes,
                round(result.telemetry.nvm_write_ratio, 3),
                round(result.execution_time * 1e3, 1),
            ]
        )
    save_report(
        "fig2_accesses",
        format_table(
            ["workload", "size", "media reads", "media writes", "write ratio", "time (ms)"],
            rows,
            title="Fig 2 (middle): NVDIMM accesses on Tier 2 (ipmctl)",
        ),
    )


def test_heavy_workloads_access_order_of_magnitude_more(nvm_runs):
    heavy = min(nvm_runs[(w, "large")].nvm_reads + nvm_runs[(w, "large")].nvm_writes
                for w in HEAVY)
    light = max(nvm_runs[(w, "large")].nvm_reads + nvm_runs[(w, "large")].nvm_writes
                for w in LIGHT)
    assert heavy > light


def test_accesses_grow_with_size(nvm_runs, fig2_grid):
    for workload in fig2_grid.workloads():
        totals = [
            nvm_runs[(workload, size)].nvm_reads
            + nvm_runs[(workload, size)].nvm_writes
            for size in SIZE_ORDER
        ]
        assert totals[0] < totals[2], workload


def test_time_correlates_with_access_count(nvm_runs):
    accesses = []
    times = []
    for result in nvm_runs.values():
        accesses.append(result.nvm_reads + result.nvm_writes)
        times.append(result.execution_time)
    assert pearson(accesses, times) > 0.8


def test_lda_is_the_write_heaviest_app(nvm_runs, fig2_grid):
    ratios = {
        w: nvm_runs[(w, "large")].telemetry.nvm_write_ratio
        for w in fig2_grid.workloads()
    }
    assert max(ratios, key=ratios.get) == "lda"


def test_write_share_degrades_nonlinearly(nvm_runs, fig2_grid):
    """NVM degradation grows with write share (Takeaway 3)."""
    ratios, degradations = [], []
    for (workload, size), result in nvm_runs.items():
        base = fig2_grid.time(workload, size, 0)
        ratios.append(result.telemetry.nvm_write_ratio)
        degradations.append(result.execution_time / base)
    assert pearson(ratios, degradations) > 0.3


def test_lda_large_skyrockets_with_writes(nvm_runs, fig2_grid):
    """The paper's marquee case: lda-large degradation tracks its writes."""
    sizes = ("tiny", "small", "large")
    write_ratios = [nvm_runs[("lda", s)].telemetry.nvm_write_ratio for s in sizes]
    degradations = [
        nvm_runs[("lda", s)].execution_time / fig2_grid.time("lda", s, 0)
        for s in sizes
    ]
    assert write_ratios == sorted(write_ratios)
    assert degradations == sorted(degradations)
    assert degradations[-1] > 1.5 * degradations[0]
