"""Fig. 3 — execution time under Intel MBA bandwidth caps.

Paper finding (Takeaway 4): neither the mean nor the variance of the
execution-time distribution moves as the cap shrinks from 100 % to 10 %,
because the workloads never saturate bandwidth — they are *latency*
bound.  The benchmark sweeps the MBA levels on the NVM tier and renders
violin-style distribution rows per workload.
"""

import pytest

from conftest import save_report
from repro.analysis.violin import format_violin_row
from repro.core.experiment import ExperimentConfig
from repro.core.sweeps import mba_sweep
from repro.workloads import WORKLOAD_NAMES

#: Coarse level grid (the paper uses every 10 %; 5 points sample the
#: same range at a fraction of the runtime).
LEVELS = (10, 30, 50, 70, 100)
SIZES = ("tiny", "small", "large")

#: Maximum tolerated relative spread for "insensitive" (the paper's
#: violins are visually flat; we allow modest movement).
SPREAD_LIMIT = 0.30


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for workload in WORKLOAD_NAMES:
        for size in SIZES:
            out[(workload, size)] = mba_sweep(
                ExperimentConfig(workload=workload, size=size, tier=2),
                levels=LEVELS,
            )
    return out


def test_fig3_report(sweeps, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Fig 3: execution time distribution across MBA levels (Tier 2)"]
    for workload in WORKLOAD_NAMES:
        # Aggregate across sizes like the paper's per-benchmark violins.
        for size in SIZES:
            sweep = sweeps[(workload, size)]
            lines.append(
                format_violin_row(
                    f"{workload}-{size}",
                    [t * 1e3 for t in sweep.times.values()],
                )
            )
    save_report("fig3_mba_bandwidth", "\n".join(lines))


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_execution_time_insensitive_to_caps(sweeps, workload):
    for size in SIZES:
        sweep = sweeps[(workload, size)]
        assert sweep.spread() < SPREAD_LIMIT, (
            f"{workload}-{size}: spread {sweep.spread():.2f} — bandwidth "
            f"should not be the bottleneck (Takeaway 4)"
        )


def test_throttling_never_helps(sweeps):
    for sweep in sweeps.values():
        assert sweep.times[10] >= sweep.times[100] * 0.999


def test_latency_dominates_over_bandwidth(sweeps):
    """The 10x bandwidth cut moves runtime far less than the tier change.

    Tier 2 vs Tier 0 is a ~2-4x effect (Fig. 2); MBA 10% is < 1.3x —
    the contrast that justifies Takeaway 4.
    """
    worst_mba_effect = max(
        sweep.times[10] / sweep.times[100] for sweep in sweeps.values()
    )
    assert worst_mba_effect < 1.5
