"""Extension — App Direct vs Memory Mode (the paper's open question).

The paper runs DCPM in App Direct mode only; providers' other option is
Memory Mode (DRAM as a hardware cache in front of Optane).  This
benchmark sweeps DRAM-cache hit rates and compares against App Direct
Tier 0/Tier 2, locating the crossover where Memory Mode stops paying
off — evidence for the discussion section's "optimal tier per access
type" direction.
"""

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.memory_mode_experiment import memory_mode_sweep
from repro.memory.memory_mode import crossover_hit_rate

HIT_RATES = (0.1, 0.3, 0.6, 0.8, 0.95)
WORKLOAD, SIZE = "bayes", "small"


@pytest.fixture(scope="module")
def app_direct_times():
    return {
        tier: run_experiment(
            ExperimentConfig(workload=WORKLOAD, size=SIZE, tier=tier)
        ).execution_time
        for tier in (0, 2)
    }


@pytest.fixture(scope="module")
def mode_results():
    return memory_mode_sweep(WORKLOAD, SIZE, hit_rates=HIT_RATES)


def test_memory_mode_report(app_direct_times, mode_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        ["App Direct DRAM (Tier 0)", "-", app_direct_times[0] * 1e3],
        ["App Direct NVM (Tier 2)", "-", app_direct_times[2] * 1e3],
    ] + [
        ["Memory Mode", f"{r.hit_rate:.0%}", r.execution_time * 1e3]
        for r in mode_results
    ]
    save_report(
        "memory_mode",
        format_table(
            ["configuration", "hit rate", "time (ms)"],
            rows,
            title=f"{WORKLOAD}-{SIZE}: App Direct vs Memory Mode",
        )
        + f"\nlatency crossover hit rate (analytical): {crossover_hit_rate():.1%}",
    )


def test_all_mode_runs_verified(mode_results):
    assert all(r.verified for r in mode_results)


def test_time_decreases_with_hit_rate(mode_results):
    times = [r.execution_time for r in mode_results]
    assert times == sorted(times, reverse=True)


def test_high_hit_rate_beats_app_direct_nvm(app_direct_times, mode_results):
    best = min(r.execution_time for r in mode_results)
    assert best < app_direct_times[2]


def test_memory_mode_never_beats_pure_dram(app_direct_times, mode_results):
    best = min(r.execution_time for r in mode_results)
    assert best > app_direct_times[0] * 0.95


def test_below_crossover_no_better_than_app_direct(app_direct_times, mode_results):
    """Below the analytical crossover (~21 %), the DRAM cache mostly adds
    miss overhead — Memory Mode stops paying off against App Direct."""
    below = next(r for r in mode_results if r.hit_rate == 0.1)
    assert below.execution_time > app_direct_times[2] * 0.9
