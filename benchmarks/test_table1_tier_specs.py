"""Table I — idle access latency and memory bandwidth per tier.

Paper values (measured on the real testbed with MLC-style tools):

======  ==================  =================
Tier    Idle latency (ns)   Bandwidth (GB/s)
======  ==================  =================
0               77.8              39.3
1              130.9              31.6
2              172.1              10.7
3              231.3               0.47
======  ==================  =================

The benchmark runs a dependent-load pointer chase and a single-stream
copy through the full discrete-event simulator and checks the model
lands on the paper's numbers.
"""

import pytest

from conftest import save_report
from repro.analysis.tables import format_table
from repro.core.microbench import measure_tier_specs

PAPER_TABLE_1 = {
    0: (77.8, 39.3),
    1: (130.9, 31.6),
    2: (172.1, 10.7),
    3: (231.3, 0.47),
}


@pytest.fixture(scope="module")
def measurements():
    return measure_tier_specs()


def test_table1_report(measurements, benchmark):
    benchmark.pedantic(measure_tier_specs, rounds=1, iterations=1)
    rows = []
    for m in measurements:
        paper_lat, paper_bw = PAPER_TABLE_1[m.tier_id]
        rows.append(
            [
                f"Tier {m.tier_id}",
                paper_lat,
                round(m.idle_latency_ns, 1),
                paper_bw,
                round(m.read_bandwidth_gbps, 2),
                round(m.write_bandwidth_gbps, 2),
            ]
        )
    save_report(
        "table1_tier_specs",
        format_table(
            ["tier", "paper lat (ns)", "measured lat (ns)",
             "paper bw (GB/s)", "measured bw (GB/s)", "write bw (GB/s)"],
            rows,
            title="Table I: idle latency and bandwidth per tier",
        ),
    )


@pytest.mark.parametrize("tier_id", [0, 1, 2, 3])
def test_latency_matches_paper(measurements, tier_id):
    measured = next(m for m in measurements if m.tier_id == tier_id)
    assert measured.idle_latency_ns == pytest.approx(
        PAPER_TABLE_1[tier_id][0], rel=0.02
    )


@pytest.mark.parametrize("tier_id", [0, 1, 2, 3])
def test_bandwidth_matches_paper(measurements, tier_id):
    measured = next(m for m in measurements if m.tier_id == tier_id)
    assert measured.read_bandwidth_gbps == pytest.approx(
        PAPER_TABLE_1[tier_id][1], rel=0.02
    )


def test_nvm_write_bandwidth_below_read(measurements):
    for m in measurements:
        if m.tier_id >= 2:
            assert m.write_bandwidth_gbps < m.read_bandwidth_gbps
