"""Self-contained PEP 517/660 build backend for the ``repro`` package.

``pyproject.toml`` points here via ``backend-path``, so ``pip install -e .``
(and plain wheel builds) work with the standard library alone — no
``setuptools``/``wheel`` download is needed, which matters in the offline
environments this testbed targets.

The backend produces:

- a regular wheel (:func:`build_wheel`) packaging everything under
  ``src/repro``;
- an editable wheel (:func:`build_editable`) that installs a single
  ``__editable__.repro-<version>.pth`` file pointing at ``src``;
- the ``*.dist-info`` metadata tree (:func:`prepare_metadata_for_build_wheel`);
- a minimal sdist (:func:`build_sdist`).

Wheel records follow the binary-distribution spec: each RECORD row is
``path,sha256=<urlsafe-b64-no-pad>,size`` and the RECORD file itself is
listed with empty digest and size.
"""

from __future__ import annotations

import base64
import csv
import hashlib
import io
import os
import tarfile
import zipfile
from pathlib import Path

NAME = "repro"
VERSION = "1.0.0"
REQUIRES_PYTHON = ">=3.10"
DEPENDENCIES = ("numpy>=1.24",)
SUMMARY = (
    "Reproduction of 'On the Implications of Heterogeneous Memory Tiering "
    "on Spark In-Memory Analytics' (IPPS 2023)"
)

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
_DIST_INFO = f"{NAME}-{VERSION}.dist-info"
_WHEEL_NAME = f"{NAME}-{VERSION}-py3-none-any.whl"
_EXCLUDED_DIRS = {"__pycache__", ".pytest_cache"}
_EXCLUDED_SUFFIXES = {".pyc", ".pyo"}


# -- PEP 517 hook: build requirements -----------------------------------------
def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


# -- metadata -----------------------------------------------------------------
def _metadata_text() -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {NAME}",
        f"Version: {VERSION}",
        f"Summary: {SUMMARY}",
        "License: MIT",
        f"Requires-Python: {REQUIRES_PYTHON}",
    ]
    lines.extend(f"Requires-Dist: {dep}" for dep in DEPENDENCIES)
    readme = _ROOT / "README.md"
    if readme.exists():
        lines.append("Description-Content-Type: text/markdown")
        lines.append("")
        lines.append(readme.read_text(encoding="utf-8"))
    return "\n".join(lines) + "\n"


def _wheel_text(editable: bool) -> str:
    generator = f"{NAME}_build_backend ({VERSION})"
    return (
        "Wheel-Version: 1.0\n"
        f"Generator: {generator}\n"
        "Root-Is-Purelib: true\n"
        "Tag: py3-none-any\n"
    )


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    """Write ``repro-<version>.dist-info/{METADATA,WHEEL}``; return its name."""
    dist_info = Path(metadata_directory) / _DIST_INFO
    dist_info.mkdir(parents=True, exist_ok=True)
    (dist_info / "METADATA").write_text(_metadata_text(), encoding="utf-8")
    (dist_info / "WHEEL").write_text(_wheel_text(editable=False), encoding="utf-8")
    return _DIST_INFO


def prepare_metadata_for_build_editable(metadata_directory, config_settings=None):
    return prepare_metadata_for_build_wheel(metadata_directory, config_settings)


# -- wheel assembly -----------------------------------------------------------
def _package_files() -> list[tuple[str, Path]]:
    """(archive name, source path) for every packaged file, sorted."""
    members: list[tuple[str, Path]] = []
    for path in sorted((_SRC / NAME).rglob("*")):
        if not path.is_file():
            continue
        if any(part in _EXCLUDED_DIRS for part in path.parts):
            continue
        if path.suffix in _EXCLUDED_SUFFIXES:
            continue
        members.append((path.relative_to(_SRC).as_posix(), path))
    return members


def _digest(data: bytes) -> str:
    raw = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(raw).rstrip(b"=").decode()


def _write_wheel(
    wheel_directory: str, payload: list[tuple[str, bytes]], editable: bool
) -> str:
    """Assemble a deterministic wheel from in-memory payload members."""
    record_name = f"{_DIST_INFO}/RECORD"
    members = list(payload)
    members.append(
        (f"{_DIST_INFO}/METADATA", _metadata_text().encode("utf-8"))
    )
    members.append(
        (f"{_DIST_INFO}/WHEEL", _wheel_text(editable).encode("utf-8"))
    )

    record = io.StringIO()
    writer = csv.writer(record, lineterminator="\n")
    for arcname, data in members:
        writer.writerow([arcname, _digest(data), len(data)])
    writer.writerow([record_name, "", ""])

    out = Path(wheel_directory) / _WHEEL_NAME
    # Fixed timestamps keep repeated builds byte-identical.
    stamp = (2023, 1, 1, 0, 0, 0)
    with zipfile.ZipFile(out, "w", zipfile.ZIP_DEFLATED) as archive:
        for arcname, data in members:
            archive.writestr(zipfile.ZipInfo(arcname, stamp), data)
        archive.writestr(
            zipfile.ZipInfo(record_name, stamp), record.getvalue()
        )
    return _WHEEL_NAME


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    payload = [
        (arcname, path.read_bytes()) for arcname, path in _package_files()
    ]
    return _write_wheel(wheel_directory, payload, editable=False)


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    """PEP 660 editable wheel: one ``.pth`` entry pointing at ``src``."""
    pth = f"__editable__.{NAME}-{VERSION}.pth"
    payload = [(pth, (str(_SRC) + os.linesep).encode("utf-8"))]
    return _write_wheel(wheel_directory, payload, editable=True)


# -- sdist --------------------------------------------------------------------
def build_sdist(sdist_directory, config_settings=None):
    """Minimal source distribution: package sources + project files."""
    base = f"{NAME}-{VERSION}"
    out = Path(sdist_directory) / f"{base}.tar.gz"
    extras = ["pyproject.toml", "README.md", "setup.py"]
    with tarfile.open(out, "w:gz") as archive:
        for arcname, path in _package_files():
            archive.add(path, arcname=f"{base}/src/{arcname}")
        backend = Path(__file__)
        archive.add(
            backend, arcname=f"{base}/_build_backend/{backend.name}"
        )
        for extra in extras:
            path = _ROOT / extra
            if path.exists():
                archive.add(path, arcname=f"{base}/{extra}")
    return out.name
