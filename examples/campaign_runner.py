#!/usr/bin/env python
"""Campaign execution: parallel fan-out, content-addressed caching, resume.

Runs a Fig. 4-style grid (executors × cores on two tiers) three ways:

1. serially, as the baseline;
2. across a 4-process pool — value-identical to the serial run, because
   every experiment is a pure function of its config;
3. again against the same cache directory — zero experiments execute,
   every point is a cache hit, which is exactly how an interrupted
   campaign resumes.

Also shows per-point failure isolation: one bad config records an error
while the rest of the campaign completes.

Run:  python examples/campaign_runner.py
"""

import tempfile
import time

from repro import RunOptions, api
from repro.analysis.resultstore import result_to_dict
from repro.units import fmt_time

GRID = [
    api.config(
        workload="repartition", size="tiny", tier=tier,
        num_executors=executors, executor_cores=cores,
    )
    for tier in (0, 2)
    for executors in (1, 4)
    for cores in (10, 40)
]


def main() -> None:
    print(f"Campaign over {len(GRID)} points (repartition-tiny, Fig. 4 slice)\n")

    started = time.perf_counter()
    serial = api.campaign(GRID)
    serial_wall = time.perf_counter() - started
    print(f"serial   : {serial.summary()} ({serial_wall:.2f}s wall)")

    with tempfile.TemporaryDirectory() as cache_dir:
        options = RunOptions(workers=4, cache_dir=cache_dir)
        started = time.perf_counter()
        parallel = api.campaign(GRID, options=options)
        parallel_wall = time.perf_counter() - started
        print(f"parallel : {parallel.summary()} ({parallel_wall:.2f}s wall)")

        identical = [result_to_dict(r) for r in serial.results] == [
            result_to_dict(r) for r in parallel.results
        ]
        print(f"\n4-worker results value-identical to serial: {identical}")
        assert identical

        resumed = api.campaign(GRID, options=options)
        print(
            f"re-run   : {resumed.summary()}  "
            f"<- 0 executed, all {resumed.cache_hits} from cache"
        )
        assert resumed.executed == 0

    fastest = min(serial.results, key=lambda r: r.execution_time)
    print(
        f"\nfastest cell: {fastest.config.describe()} "
        f"at {fmt_time(fastest.execution_time)}"
    )

    # One bad point must not kill the campaign.
    mixed = [GRID[0], GRID[0].with_options(size="not-a-size"), GRID[1]]
    report = api.campaign(mixed)
    print(
        f"\nfailure isolation: {len(report.results)} points succeeded, "
        f"{len(report.failures)} failed and were captured:"
    )
    for point in report.failures:
        print(f"  point #{point.index}: {point.error}")


if __name__ == "__main__":
    main()
