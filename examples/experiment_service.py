#!/usr/bin/env python
"""The async experiment service: many clients, one shared pool.

Three concurrent "clients" (asyncio tasks) submit a burst of
experiments to one :class:`repro.service.ExperimentService` — including
duplicates, a mix of priorities, and more work than the pool can start
at once.  The service:

- **coalesces** duplicate submissions onto one in-flight execution
  (every duplicate caller gets the *same* result object);
- schedules by **priority, then fair share** across clients;
- streams per-job **events** (queued → started → done);
- answers instantly from the **result cache** on resubmission;
- applies **backpressure**: the queue is bounded at 4, and a rejected
  submission surfaces as an explicit ``QueueFullError`` (here the bound
  is never hit — coalescing absorbs the duplicate half of the burst,
  which is the point: dedup *is* load shedding).

Everything stays bit-identical to ``api.run`` — the service changes
*when* work runs, never what it computes.

Run:  python examples/experiment_service.py
"""

import asyncio
import tempfile

from repro import RunOptions, api
from repro.service import ExperimentService, QueueFullError
from repro.units import fmt_time

#: Four distinct points; clients below submit eight jobs over them, so
#: half the burst is duplicates the service never recomputes.
POINTS = [
    api.config("sort", size="tiny", tier=tier, mba_percent=mba)
    for tier in (0, 2)
    for mba in (50, 100)
]


async def client(service, name, submissions, log):
    """One submitter: fire everything, then await the results."""
    jobs = []
    for config, priority in submissions:
        try:
            job = await service.submit(config, client=name, priority=priority)
        except QueueFullError as exc:
            log.append(f"  [{name}] rejected (backpressure): {exc}")
            continue
        jobs.append(job)
    results = []
    for job in jobs:
        result = await job.result()
        events = " -> ".join(e.kind for e in job.event_log)
        log.append(
            f"  [{name}] {job.config.describe()}  status={job.status:9s} "
            f"events: {events}"
        )
        results.append((job, result))
    return results


async def main_async() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        options = RunOptions(cache_dir=cache_dir)
        async with ExperimentService(
            options, max_queue=4, heartbeat=0
        ) as service:
            print("burst: 3 clients x 8 jobs over 4 distinct configs\n")
            log: list[str] = []
            outcomes = await asyncio.gather(
                client(service, "alice",
                       [(POINTS[0], 0), (POINTS[1], 0), (POINTS[2], 0)], log),
                client(service, "bob",
                       [(POINTS[0], 5), (POINTS[1], 0), (POINTS[3], 0)], log),
                client(service, "carol",
                       [(POINTS[0], 0), (POINTS[2], 0)], log),
            )
            print("\n".join(sorted(log)))

            summary = service.summary()
            print(
                f"\nsubmitted={int(summary['submitted'])} "
                f"completed={int(summary['completed'])} "
                f"coalesce_hits={int(summary['coalesce_hits'])} "
                f"rejected={int(summary['rejected_queue_full'])}"
            )

            # Duplicates shared one execution AND one result object.
            by_key = {}
            for job, result in (pair for out in outcomes for pair in out):
                by_key.setdefault(job.key, []).append(result)
            shared = all(
                all(r is results[0] for r in results)
                for results in by_key.values()
            )
            print(f"duplicate submissions share one result object: {shared}")
            assert shared

            # And the service is bit-identical to direct execution.
            job_result = await service.run(POINTS[0])
            direct = api.run(POINTS[0])
            identical = job_result.execution_time == direct.execution_time
            print(
                f"bit-identical to api.run: {identical} "
                f"({fmt_time(direct.execution_time)})"
            )
            assert identical

            # Resubmission after completion: instant cache answer.
            cached = await service.submit(POINTS[1])
            await cached.result()
            print(f"resubmitted point resolved from cache: "
                  f"{cached.status == 'cached'}")

        print("\ndrained: every admitted job resolved before shutdown")


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
