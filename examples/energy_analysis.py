#!/usr/bin/env python
"""Energy and endurance analysis of DRAM vs Optane deployments.

Compares per-DIMM energy (the paper's Fig. 2 bottom), shows that total
NVM energy exceeds DRAM despite lower access energy, and projects
NVDIMM wear from the measured write traffic (the long-term concern of
Takeaway 3).

Run:  python examples/energy_analysis.py
"""

from repro import api
from repro.analysis.tables import format_table
from repro.cluster.topology import paper_testbed
from repro.memory.wear import WearTracker
from repro.sim import Environment
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.units import fmt_time
from repro.workloads import get_workload

WORKLOADS = ("sort", "lda")


def energy_comparison() -> None:
    rows = []
    for workload in WORKLOADS:
        for size in ("small", "large"):
            base = api.config(workload=workload, size=size)
            dram, nvm = api.sweep(base, axis="tier", values=(0, 2))
            dram_j = dram.telemetry.energy["numa1-dram"].per_dimm_joules
            nvm_j = nvm.telemetry.energy["numa2-nvm4"].per_dimm_joules
            rows.append(
                [
                    workload,
                    size,
                    fmt_time(dram.execution_time),
                    fmt_time(nvm.execution_time),
                    f"{dram_j:.3f}",
                    f"{nvm_j:.3f}",
                    f"{(nvm_j - dram_j) / nvm_j:.0%}",
                ]
            )
    print(
        format_table(
            ["workload", "size", "T0 time", "T2 time",
             "DRAM J/DIMM", "DCPM J/DIMM", "DRAM saves"],
            rows,
            title="Per-DIMM energy: DRAM (Tier 0) vs Optane DCPM (Tier 2)",
        )
    )


def wear_projection() -> None:
    """Run lda (write-heavy) on NVM and extrapolate DIMM lifetime."""
    env = Environment()
    machine = paper_testbed(env)
    sc = SparkContext(env=env, machine=machine, conf=SparkConf(memory_tier=2))
    get_workload("lda").run(sc, "small")
    elapsed = env.now

    tracker = WearTracker(machine.devices_of_kind("nvm"))
    worst = tracker.worst(elapsed)
    print("\nNVDIMM endurance projection (continuous lda-small workload):")
    print(f"  media writes so far : {tracker.total_media_writes():,}")
    print(f"  most-worn DIMM      : {worst.dimm_id}")
    print(f"  wear fraction       : {worst.wear_fraction:.3e}")
    years = worst.projected_lifetime_years
    print(f"  projected lifetime  : {years:,.0f} years at this (scaled) rate")
    print(
        "  (paper-scale workloads run ~1000x more traffic: sustained "
        "write-heavy analytics measurably shortens DCPM life — Takeaway 3.)"
    )
    sc.stop()


if __name__ == "__main__":
    energy_comparison()
    wear_projection()
