#!/usr/bin/env python
"""Cross-tier performance prediction (the paper's Takeaway 8).

Fits a linear model on three memory tiers and predicts execution time on
a held-out tier from hardware specs alone, then shows the correlations
that make the linear approach work (Figs. 5-6).

Run:  python examples/performance_prediction.py
"""

from repro import api
from repro.analysis.tables import format_table
from repro.core.correlation import hardware_spec_correlation
from repro.core.prediction import LinearTierPredictor, predict_cross_tier
from repro.units import fmt_time

WORKLOADS = ("sort", "bayes", "pagerank")


def main() -> None:
    print("Measuring every tier for", ", ".join(WORKLOADS), "(small size)...")
    results = api.campaign(
        [
            api.config(workload=workload, size="small", tier=tier)
            for workload in WORKLOADS
            for tier in range(4)
        ]
    ).results

    # Fig. 6: specs correlate almost perfectly with execution time.
    hw = hardware_spec_correlation(results)
    rows = [
        [workload, size, f"{row['latency']:+.3f}", f"{row['bandwidth']:+.3f}"]
        for (workload, size), row in sorted(hw.items())
    ]
    print()
    print(
        format_table(
            ["workload", "size", "r(latency)", "r(bandwidth)"],
            rows,
            title="Hardware-spec correlation with execution time (Fig. 6)",
        )
    )

    # Leave-one-tier-out prediction.
    print("\nLeave-one-tier-out: train on tiers {0,1,3}, predict tier 2")
    rows = []
    for prediction in predict_cross_tier(results, held_out_tier=2):
        rows.append(
            [
                prediction.workload,
                fmt_time(prediction.actual),
                fmt_time(prediction.predicted),
                f"{prediction.relative_error:.1%}",
            ]
        )
    print(format_table(["workload", "actual", "predicted", "rel. error"], rows))

    # An R^2 on the full sweep, per workload.
    print("\nModel fit quality (R^2 on all four tiers):")
    for workload in WORKLOADS:
        group = [r for r in results if r.config.workload == workload]
        model = LinearTierPredictor().fit(group)
        print(f"  {workload:10s} R^2 = {model.score(group):.4f}")

    print(
        "\nLatency correlates near +1 and bandwidth near -1 across tiers, so "
        "a two-feature linear model transfers across tiers (Takeaway 8)."
    )


if __name__ == "__main__":
    main()
