#!/usr/bin/env python
"""The live monitoring plane: scrape, correlate, post-mortem.

One script exercises every surface a production operator would touch
(docs/OBSERVABILITY.md, "Live monitoring"):

- an :class:`~repro.service.ExperimentService` runs a small mixed
  workload while its registry fills with counters, gauges, and
  streaming **quantile sketches** (p50/p90/p99 with bounded memory);
- the registry renders as **Prometheus text exposition** — the exact
  bytes the HTTP ``/metrics`` listener and the JSON-lines ``metrics``
  op serve — and is re-validated with the strict parser;
- per-tier **labelled device counters** (``device.media_reads{tier=...,
  device=...}``) appear from the jobs' telemetry, so one scrape
  distinguishes DRAM from Optane traffic;
- a **structured JSON log** correlates every line with its job id;
- an injected failure triggers the **flight recorder**: the failed
  job's recent events + a metrics snapshot + the log tail land in one
  loadable post-mortem artifact;
- the same scrape drives :func:`repro.obs.format_top` — one frame of
  the ``repro top`` dashboard, no terminal required.

Run:  python examples/live_monitoring.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro import RunOptions, api
from repro.obs import format_top, load_flight_dump, parse_prometheus, read_log
from repro.obs.log import configure
from repro.service import ExperimentService

POINTS = [
    api.config("sort", size="tiny", tier=tier) for tier in (0, 2)
] + [api.config("pagerank", size="tiny", tier=1)]


def boom(config, trace_root, obs_dir):
    raise RuntimeError("injected failure for the flight recorder")


async def monitored_session(workdir: Path):
    configure(workdir / "service-log.jsonl")

    # A healthy service running real points...
    service = ExperimentService(
        RunOptions(reuse_traces=False), heartbeat=0, flight_dir=workdir
    )
    async with service:
        for point in POINTS:
            await service.run(point, client="demo")
        scrape = service.render_prometheus()
        frame = format_top(
            service.summary(),
            service.flat_summary(),
            clients=service.client_inflight(),
        )

    # ...and one with an injected failure, to trip the flight recorder.
    faulty = ExperimentService(
        RunOptions(reuse_traces=False),
        heartbeat=0,
        execute=boom,
        flight_dir=workdir,
    )
    async with faulty:
        job = await faulty.submit(POINTS[0], client="demo")
        try:
            await job.result()
        except RuntimeError:
            pass
    return scrape, frame, job


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-live-") as tmp:
        workdir = Path(tmp)
        scrape, frame, failed_job = asyncio.run(monitored_session(workdir))

        series = parse_prometheus(scrape)  # strict: raises if malformed
        print(f"scrape parses: {len(series)} series, all well-formed")
        tiers = sorted(
            {
                pair.split("=", 1)[1].strip('"')
                for name, labels in series
                if name == "repro_device_media_reads_total"
                for pair in labels.split(",")
                if pair.startswith("tier=")
            }
        )
        print(f"per-tier device series for tiers: {', '.join(tiers)}")
        p50 = next(
            value
            for (name, labels), value in series.items()
            if name == "repro_jobs_execution_time_s_bucket"
        )
        assert p50 >= 0.0

        print()
        print(frame)
        print()

        log_records = read_log(workdir / "service-log.jsonl")
        job_ids = {r.get("job") for r in log_records if "job" in r}
        print(
            f"structured log: {len(log_records)} records correlating "
            f"{len(job_ids)} jobs"
        )

        dump = load_flight_dump(workdir / f"flight-job-{failed_job.id}.json")
        kinds = [event["event"] for event in dump["events"]]
        print(
            f"flight recorder: job {failed_job.id} failed "
            f"({dump['reason']}); post-mortem holds {kinds} "
            f"+ metrics snapshot + {len(dump['log_tail'])} log lines"
        )
        configure(None)


if __name__ == "__main__":
    main()
