#!/usr/bin/env python
"""Capacity planning: from characterization to a purchasing decision.

Profiles a custom application (described as a stage trace — no code or
data needed), then asks the planner which DRAM/NVM node configuration
is the cheapest that keeps the expected slowdown inside budget.

Run:  python examples/capacity_planning.py
"""

from repro.core.capacity import CapacityPlanner
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.costs import CostSpec
from repro.units import fmt_time
from repro.workloads.trace_replay import StageSpec, TraceReplayWorkload, TraceSpec

# An ETL pipeline described as a trace — the shape of a real nightly
# job, without its code or data.
ETL_TRACE = TraceSpec(
    name="nightly-etl",
    stages=(
        StageSpec("extract", records=10_000, record_bytes=256,
                  cost=CostSpec(ops_per_record=150, random_reads_per_record=5)),
        StageSpec("enrich-join", records=10_000, record_bytes=256, shuffle=True,
                  cost=CostSpec(ops_per_record=400, random_reads_per_record=20,
                                random_writes_per_record=6)),
        StageSpec("aggregate", records=2_000, selectivity=0.2, shuffle=True,
                  cost=CostSpec(ops_per_record=250, random_reads_per_record=10,
                                random_writes_per_record=3)),
    ),
    partitions=8,
)


def main() -> None:
    # 1. Replay the trace on two tiers to see its sensitivity.
    print("Replaying the traced pipeline on DRAM and NVM tiers:")
    for tier in (0, 2):
        sc = SparkContext(conf=SparkConf(memory_tier=tier))
        result = TraceReplayWorkload.from_spec(ETL_TRACE).run(sc, "small")
        print(
            f"  tier {tier}: {fmt_time(result.execution_time)} "
            f"(verified={result.verified})"
        )

    # 2. Plan node configurations for a known workload profile.
    print("\nCapacity plan for a bayes-like aggregation profile:")
    planner = CapacityPlanner("bayes", "small")
    for working_set, budget in ((200, 1.3), (800, 2.5), (1400, 2.5)):
        plan = planner.plan(working_set_gib=working_set, slowdown_budget=budget)
        print()
        print(plan.describe())

    print(
        "\nSmall working sets justify DRAM-only nodes; past the DRAM price "
        "cliff, hybrid nodes win if the workload tolerates the NVM share "
        "(Takeaways 1 and 8 turned into procurement advice)."
    )


if __name__ == "__main__":
    main()
