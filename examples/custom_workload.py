#!/usr/bin/env python
"""Extending the suite: define, register and characterize a new workload.

Implements a k-means-style clustering workload (a common HiBench member
the paper did not include), registers it alongside the built-in seven,
and runs it through the standard experiment pipeline across tiers —
demonstrating that the characterization harness is workload-agnostic.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import api
from repro.analysis.tables import format_table
from repro.spark.context import SparkContext
from repro.spark.costs import CostSpec
from repro.units import fmt_time
from repro.workloads.base import SizeProfile, Workload
from repro.workloads.registry import register_workload

#: Distance evaluation per point per centroid: vectorized compute with
#: centroid-table probes.
ASSIGN_COST = CostSpec(
    ops_per_record=1_500.0, random_reads_per_record=10.0, random_writes_per_record=2.0
)

K = 4
ITERATIONS = 4


@register_workload
class KMeansWorkload(Workload):
    """Lloyd's algorithm over the RDD engine."""

    name = "kmeans-custom"
    category = "ml"
    sizes = {
        "tiny": SizeProfile("tiny", {"points": 200, "dims": 4}, partitions=4),
        "small": SizeProfile("small", {"points": 1_000, "dims": 8}, partitions=8),
        "large": SizeProfile("large", {"points": 4_000, "dims": 12}, partitions=8),
    }

    def prepare(self, sc: SparkContext, size: str) -> None:
        profile = self.profile(size)
        rng = np.random.default_rng(37)
        centers = rng.normal(scale=5.0, size=(K, profile.param("dims")))
        labels = rng.integers(0, K, size=profile.param("points"))
        points = centers[labels] + rng.normal(size=(len(labels), profile.param("dims")))
        sc.hdfs.put_records(
            self.input_path(size),
            [row for row in points],
            record_bytes=8.0 * profile.param("dims") + 96,
        )

    def execute(self, sc: SparkContext, size: str):
        profile = self.profile(size)
        points = sc.text_file(self.input_path(size), profile.partitions).cache()
        rng = np.random.default_rng(41)
        sample = sc.hdfs.read_records(self.input_path(size))
        centroids = np.array(
            [sample[i] for i in rng.choice(len(sample), K, replace=False)]
        )

        inertia = float("inf")
        for _ in range(ITERATIONS):
            fixed = centroids.copy()
            assigned = points.map(
                lambda p, c=fixed: (
                    int(np.argmin(((c - p) ** 2).sum(axis=1))),
                    (p, 1),
                ),
                cost=ASSIGN_COST,
            )
            sums = assigned.reduce_by_key(
                lambda a, b: (a[0] + b[0], a[1] + b[1]), profile.partitions
            ).collect()
            for cluster, (total, count) in sums:
                centroids[cluster] = total / count
            inertia = sum(
                float(((centroids - p) ** 2).sum(axis=1).min()) for p in sample
            )
        return {"inertia": inertia, "centroids": centroids}, profile.param("points")

    def verify(self, output, sc, size) -> bool:
        # Separated synthetic clusters: mean per-point inertia must land
        # near the noise floor (dims x unit variance).
        dims = self.profile(size).param("dims")
        per_point = output["inertia"] / self.profile(size).param("points")
        return per_point < 3.0 * dims


def main() -> None:
    print("Registered custom workload 'kmeans-custom'; characterizing across tiers.\n")
    rows = []
    base = api.config(workload="kmeans-custom", size="small")
    for result in api.sweep(base, axis="tier", values=range(4)):
        rows.append(
            [
                f"Tier {result.config.tier}",
                fmt_time(result.execution_time),
                "yes" if result.verified else "NO",
                f"{result.nvm_reads + result.nvm_writes:,}",
            ]
        )
    print(
        format_table(
            ["tier", "exec time", "verified", "NVM accesses"],
            rows,
            title="kmeans-custom-small across memory tiers",
        )
    )
    print(
        "\nAny Workload subclass gets the full pipeline: tier sweeps, "
        "telemetry, energy, prediction — nothing in repro.core is "
        "specific to the built-in seven."
    )


if __name__ == "__main__":
    main()
