#!/usr/bin/env python
"""Executor tuning: the "fat vs skinny" trade-off on an NVM tier.

Reproduces a slice of the paper's Fig. 4: sweeps executor count × cores
per executor for a workload bound to the socket-attached Optane tier,
renders the speedup heatmap, and prints a tuning recommendation.

Run:  python examples/executor_tuning.py [workload] [size] [workers]
      (defaults: sort small, serial execution)
"""

import sys

from repro import RunOptions, api
from repro.analysis.heatmap import format_heatmap
from repro.core.sweeps import executor_core_sweep
from repro.units import fmt_time


def tune(workload: str, size: str, workers: int | None = None) -> None:
    executors = (1, 2, 4, 8)
    cores = (5, 10, 20, 40)
    print(
        f"Sweeping {workload}-{size} on Tier 2 (Optane) over "
        f"executors {executors} x cores {cores}"
        + (f" across {workers} workers" if workers else "")
        + "...\n"
    )
    grid = executor_core_sweep(
        api.config(workload=workload, size=size, tier=2),
        executors=executors,
        cores=cores,
        options=RunOptions(workers=workers),
    )

    values = {(e, c): grid.speedup(e, c) for e in executors for c in cores}
    print(
        format_heatmap(
            list(executors),
            list(cores),
            values,
            title="speedup vs 1 executor x 40 cores (rows=executors, cols=cores)",
        )
    )

    best = max(values, key=values.get)
    worst = min(values, key=values.get)
    print(f"\nbaseline (1x40): {fmt_time(grid.baseline_time)}")
    print(
        f"best   : {best[0]} executor(s) x {best[1]} cores "
        f"({values[best]:.2f}x speedup)"
    )
    print(
        f"worst  : {worst[0]} executor(s) x {worst[1]} cores "
        f"({1 / values[worst]:.2f}x slowdown)"
    )
    if values[best] < 1.1:
        print(
            "\nRecommendation: keep the paper's default single fat executor — "
            "extra executors only add co-operation traffic on the NVM tier "
            "(Takeaway 6)."
        )
    else:
        print(
            "\nRecommendation: this workload benefits from more executors — "
            "its task volume amortizes the per-executor overheads (Takeaway 7)."
        )


if __name__ == "__main__":
    workload = sys.argv[1] if len(sys.argv) > 1 else "sort"
    size = sys.argv[2] if len(sys.argv) > 2 else "small"
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else None
    tune(workload, size, workers)
