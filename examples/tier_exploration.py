#!/usr/bin/env python
"""Tier exploration: one HiBench workload across all four memory tiers.

A miniature of the paper's Fig. 2 (top) for a single workload: runs the
chosen application at every size on every tier, prints execution times,
tier ratios and the NVDIMM access counters.

Run:  python examples/tier_exploration.py [workload]
      (default workload: bayes)
"""

import sys

from repro import api
from repro.analysis.tables import format_table
from repro.memory.tiers import table1_tiers
from repro.units import fmt_time


def explore(workload: str) -> None:
    print(f"Exploring workload {workload!r} across the Table I tiers\n")
    for tier in table1_tiers():
        print(
            f"  Tier {tier.tier_id}: {tier.name} — "
            f"{tier.idle_read_latency_ns:.1f} ns, "
            f"{tier.read_bandwidth_gbps:.2f} GB/s"
        )

    rows = []
    for size in ("tiny", "small", "large"):
        base = api.config(workload=workload, size=size)
        times = {}
        accesses = {}
        for result in api.sweep(base, axis="tier", values=range(4)):
            tier_id = result.config.tier
            assert result.verified, f"{workload}-{size} failed on tier {tier_id}"
            times[tier_id] = result.execution_time
            accesses[tier_id] = result.nvm_reads + result.nvm_writes
        rows.append(
            [
                size,
                fmt_time(times[0]),
                *(f"{times[t] / times[0]:.2f}x" for t in (1, 2, 3)),
                f"{accesses[2]:,}",
            ]
        )

    print()
    print(
        format_table(
            ["size", "T0 time", "T1 ratio", "T2 ratio", "T3 ratio", "T2 NVM accesses"],
            rows,
            title=f"{workload}: execution time relative to local DRAM",
        )
    )
    print(
        "\nRemote DRAM costs a modest premium; Optane tiers multiply the "
        "runtime — most for access-heavy workloads (Takeaways 1-2)."
    )


if __name__ == "__main__":
    explore(sys.argv[1] if len(sys.argv) > 1 else "bayes")
