#!/usr/bin/env python
"""Fault injection and straggler mitigation on the simulated cluster.

Runs the same word-count under four seeded failure regimes — task
crashes, a lost executor, shuffle fetch failures, and stragglers with
speculative execution — and shows that the scheduler's mitigation
machinery (bounded task retry, stage resubmission, blacklisting,
speculation) always recovers the exact no-fault answer, at a measurable
schedule cost.

Run:  python examples/fault_tolerance.py
"""

from repro import SparkConf, SparkContext
from repro.faults import FaultConfig
from repro.units import fmt_time

WORDS = ("spark", "memory", "tier", "dram", "nvm", "optane", "numa") * 2000


def word_count(
    label: str,
    faults: FaultConfig | None = None,
    tier: int = 0,
    speculation: bool = False,
    warm_up: bool = False,
) -> list:
    conf = SparkConf(
        memory_tier=tier,
        num_executors=4,
        executor_cores=4,
        default_parallelism=8,
        faults=faults,
        speculation=speculation,
        speculation_interval=1e-3,
    )
    sc = SparkContext(conf=conf)
    if warm_up:
        # Absorb the one-off JVM start-up cost so task durations reflect
        # steady-state work — otherwise every first-job task looks
        # equally "slow" and speculation has nothing to single out.
        sc.parallelize(range(100), 8).map(lambda x: x).collect()
    counts = (
        sc.parallelize(WORDS, 8)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )

    print(f"\n--- {label} ---")
    print(f"  distinct words   : {len(counts)}")
    print(f"  total counted    : {sum(c for _, c in counts)}")
    print(f"  simulated time   : {fmt_time(sc.total_job_time())}")
    mitigation: dict[str, int] = {}
    for job in sc.jobs:
        for key, value in job.mitigation_summary().items():
            mitigation[key] = mitigation.get(key, 0) + value
    for key, value in sorted(mitigation.items()):
        if value:
            print(f"  {key:18s} : {int(value)}")
    sc.stop()
    return sorted(counts)


def main() -> None:
    print("Fault tolerance: one word-count, four failure regimes")

    baseline = word_count("no faults")

    crashy = word_count(
        "task crashes (retry with backoff)",
        faults=FaultConfig(seed=7, task_crash_prob=0.15),
    )
    assert crashy == baseline, "retries must reproduce the no-fault answer"

    lossy = word_count(
        "executor loss (blacklist + stage resubmission)",
        faults=FaultConfig(seed=2, executor_loss_prob=0.9),
    )
    assert lossy == baseline, "executor loss must not change the answer"

    fetchy = word_count(
        "fetch failures (recompute lost map output)",
        faults=FaultConfig(seed=3, fetch_fail_prob=0.4),
    )
    assert fetchy == baseline, "recomputed shuffles must match"

    slow = word_count(
        "stragglers + speculation (NVM-remote tier)",
        faults=FaultConfig(seed=4, straggler_prob=0.12, straggler_multiplier=10.0),
        tier=3,
        speculation=True,
        warm_up=True,
    )
    assert slow == baseline, "speculative winners must match"

    print(
        "\nEvery regime converged on the identical result — the point of "
        "Spark's lineage-based fault tolerance. The counters above show "
        "what each recovery cost the schedule."
    )


if __name__ == "__main__":
    main()
