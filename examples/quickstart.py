#!/usr/bin/env python
"""Quickstart: run a Spark job on the simulated tiered-memory testbed.

Builds the paper's 2-socket DRAM/Optane machine, binds one executor to
the local-DRAM tier, runs a small word-count, then repeats the same job
membind-ed to the socket-attached Optane tier and compares.

Run:  python examples/quickstart.py
"""

from repro import SparkConf, SparkContext
from repro.telemetry import TelemetryCollector
from repro.units import fmt_time

WORDS = ("spark", "memory", "tier", "dram", "nvm", "optane", "numa") * 2000


def word_count(tier: int) -> None:
    conf = SparkConf(memory_tier=tier, default_parallelism=8)
    sc = SparkContext(conf=conf)
    collector = TelemetryCollector(sc.env, sc.machine)
    collector.start(sc)

    counts = (
        sc.parallelize(WORDS, 8)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )

    sample = collector.stop(sc)
    tier_name = sc.executors[0].memory.tier.name
    print(f"\n--- {tier_name} ---")
    print(f"  distinct words      : {len(counts)}")
    print(f"  total counted       : {sum(c for _, c in counts)}")
    print(f"  simulated exec time : {fmt_time(sample.elapsed)}")
    print(f"  NVDIMM media reads  : {sample.nvm_media_reads:,}")
    print(f"  NVDIMM media writes : {sample.nvm_media_writes:,}")
    for name, report in sorted(sample.energy.items()):
        if report.total_joules > 0:
            print(f"  energy {name:12s} : {report.total_joules:.3f} J")
    sc.stop()


def main() -> None:
    print("Quickstart: the same word-count on two memory tiers")
    word_count(tier=0)  # local DRAM
    word_count(tier=2)  # socket-attached Optane DCPM
    print(
        "\nThe NVM-bound run is slower and burns more DIMM energy despite "
        "identical results — the paper's headline observation."
    )


if __name__ == "__main__":
    main()
