#!/usr/bin/env python
"""Span tracing and metrics on a simulated Spark run (:mod:`repro.obs`).

Runs one experiment twice — once plain, once with an
:class:`~repro.obs.Observer` attached — to show that observation never
changes a simulated value, then exports the observed run's artifacts:

- ``obs-trace.json`` — a Chrome trace-event file.  Open it at
  https://ui.perfetto.dev (or ``chrome://tracing``) to see the
  experiment → job → stage → task → phase span hierarchy laid out per
  executor, with fetch-failure markers and per-device byte counters.
- ``obs-metrics.json`` — the unified metrics registry: scheduler,
  shuffle, fault, telemetry and kernel counters in one flat namespace.
- a terminal stage timeline, printed below.

Run:  python examples/observability.py
"""

from repro import RunOptions, api
from repro.obs import ObsConfig, Observer, load_metrics_json


def main() -> None:
    config = api.config(
        workload="sort", size="small", tier=2, num_executors=2,
        executor_cores=8,
    )

    print("Observability: same run, with and without the observer")
    plain = api.run(config)

    observer = Observer(ObsConfig(
        trace_path="obs-trace.json",
        metrics_path="obs-metrics.json",
    ))
    observed = api.run(config, options=RunOptions(observe=observer))

    assert observed.execution_time == plain.execution_time, \
        "observation must never perturb the simulation"
    print(f"  simulated time    : {observed.execution_time:.6f}s "
          "(bit-identical to the unobserved run)")

    tracer = observer.tracer
    tasks = tracer.by_category("task")
    stages = tracer.by_category("stage")
    print(f"  spans recorded    : {len(tracer.spans)} "
          f"({len(stages)} stages, {len(tasks)} task attempts)")
    slowest = max(tasks, key=lambda s: s.duration)
    print(f"  slowest attempt   : {slowest.name} "
          f"({slowest.duration:.6f}s on {slowest.track})")

    print("\n" + observer.timeline_text())

    registry = load_metrics_json("obs-metrics.json")
    print("\nselected metrics from obs-metrics.json:")
    for name in (
        "scheduler.attempts_launched",
        "shuffle.bytes_written",
        "shuffle.bytes_fetched",
        "sim.events_processed",
    ):
        print(f"  {name:30s}: {registry.counter(name):,.0f}")

    print("\ntrace written to obs-trace.json — load it in "
          "https://ui.perfetto.dev to explore the timeline.")


if __name__ == "__main__":
    main()
